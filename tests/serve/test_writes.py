"""Serving writes: WriteRequest routing, cache invalidation, metrics.

Writes bypass the coalescer and apply inline at submit, so these
tests drive :class:`GraphQueryServer` over an :class:`LsmStore` and
check read-your-writes consistency (through the row cache), the
write-side metric counters, and workload mixing determinism.
"""

import numpy as np
import pytest

from repro import open_store
from repro.errors import ValidationError
from repro.lsm import LsmStore, build_lsm_store
from repro.serve import (
    DONE,
    EdgeRequest,
    GraphQueryServer,
    ManualClock,
    NeighborsRequest,
    ServerConfig,
    WriteRequest,
    replay,
    synthetic_workload,
)


@pytest.fixture
def edges(rng):
    n = 50
    keys = np.unique(rng.integers(0, n * n, 400))
    return keys // n, keys % n, n


@pytest.fixture
def lsm(edges):
    src, dst, n = edges
    return build_lsm_store(src, dst, n)


class TestWriteRouting:
    def test_write_applies_inline(self, lsm):
        server = GraphQueryServer(lsm, clock=ManualClock())
        assert not lsm.has_edge(0, 49)
        slot = server.submit(WriteRequest(op="insert", u=0, v=49))
        # resolved at submit time, no drain needed
        assert slot.status == DONE
        assert slot.result() is True
        assert lsm.has_edge(0, 49)

    def test_noop_write_returns_false(self, lsm, edges):
        src, dst, _ = edges
        server = GraphQueryServer(lsm, clock=ManualClock())
        slot = server.submit(
            WriteRequest(op="insert", u=int(src[0]), v=int(dst[0]))
        )
        assert slot.result() is False
        snap = server.snapshot()
        assert snap.writes == 1
        assert snap.write_noops == 1

    def test_delete_then_read(self, lsm, edges):
        src, dst, _ = edges
        u, v = int(src[0]), int(dst[0])
        server = GraphQueryServer(lsm, config=ServerConfig(max_batch_size=1),
                                   clock=ManualClock())
        assert server.submit(WriteRequest(op="delete", u=u, v=v)).result() is True
        read = server.submit(EdgeRequest(u=u, v=v))
        server.drain()
        assert read.result() is False

    def test_unknown_op_rejected(self, lsm):
        server = GraphQueryServer(lsm, clock=ManualClock())
        with pytest.raises(ValidationError):
            server.submit(WriteRequest(op="upsert", u=0, v=1))

    def test_read_only_store_rejects_writes(self, edges):
        src, dst, n = edges
        server = GraphQueryServer(
            open_store("packed", src, dst, n), clock=ManualClock()
        )
        with pytest.raises(ValidationError, match="does not support writes"):
            server.submit(WriteRequest(op="insert", u=0, v=1))

    def test_writes_do_not_pollute_read_metrics(self, lsm):
        server = GraphQueryServer(lsm, config=ServerConfig(max_batch_size=1),
                                   clock=ManualClock())
        server.submit(WriteRequest(op="insert", u=1, v=2))
        server.submit(NeighborsRequest(node=1))
        server.drain()
        snap = server.snapshot()
        assert snap.writes == 1
        assert snap.accepted == 1  # reads only
        assert snap.completed == 1


class TestReadYourWrites:
    def test_cache_invalidated_on_write(self, lsm):
        server = GraphQueryServer(
            lsm, config=ServerConfig(max_batch_size=1, cache_elements=10_000),
            clock=ManualClock()
        )
        v = next(x for x in range(50) if not lsm.has_edge(2, x))
        before = server.submit(NeighborsRequest(node=2))
        server.drain()
        server.submit(WriteRequest(op="insert", u=2, v=v))
        after = server.submit(NeighborsRequest(node=2))
        server.drain()
        assert v not in before.result().tolist()
        assert v in after.result().tolist()
        assert server.row_cache.stats().invalidations >= 1

    def test_stale_row_would_be_served_without_invalidate(self, lsm):
        """Regression guard for the staleness bug invalidate() fixes:
        a cached row survives a write unless the server drops it."""
        from repro.query.rowcache import RowCache

        cache = RowCache(lsm, 10_000)
        v = next(x for x in range(50) if not lsm.has_edge(2, x))
        stale = cache.neighbors(2)
        lsm.insert_edge(2, v)
        assert np.array_equal(cache.neighbors(2), stale)  # stale!
        assert cache.invalidate([2]) == 1
        assert v in cache.neighbors(2).tolist()

    def test_compaction_under_cache_stays_bit_exact(self, lsm):
        lsm.compact_watermark = 8
        server = GraphQueryServer(
            lsm, config=ServerConfig(max_batch_size=1, cache_elements=10_000),
            clock=ManualClock()
        )
        rng = np.random.default_rng(4)
        for _ in range(40):
            server.submit(
                WriteRequest(
                    op="insert",
                    u=int(rng.integers(0, 50)),
                    v=int(rng.integers(0, 50)),
                )
            )
            u = int(rng.integers(0, 50))
            slot = server.submit(NeighborsRequest(node=u))
            server.drain()
            assert np.array_equal(slot.result(), lsm.segments and lsm.neighbors(u))
        assert server.snapshot().compactions >= 1


class TestWriteMetrics:
    def test_snapshot_write_fields(self, lsm):
        lsm.compact_watermark = 5
        server = GraphQueryServer(lsm, clock=ManualClock())
        applied = 0
        for v in range(12):
            slot = server.submit(WriteRequest(op="insert", u=0, v=v))
            applied += bool(slot.result())
        snap = server.snapshot()
        assert snap.writes == 12
        assert snap.writes - snap.write_noops == applied
        assert snap.write_ns_p50 > 0
        assert snap.write_ns_p99 >= snap.write_ns_p50
        assert snap.compactions == lsm.stats().compactions >= 1
        assert snap.memtable_edges == len(lsm.memtable)

    def test_write_fields_zero_for_read_only_traffic(self, lsm):
        server = GraphQueryServer(lsm, config=ServerConfig(max_batch_size=1),
                                   clock=ManualClock())
        server.submit(NeighborsRequest(node=0))
        server.drain()
        snap = server.snapshot()
        assert snap.writes == 0
        assert snap.write_ns_p50 == 0.0


class TestMixedWorkload:
    def test_mix_fractions_and_determinism(self, edges):
        src, dst, n = edges
        wl = synthetic_workload(
            2000, n, edges=(src, dst), write_fraction=0.1, seed=7
        )
        writes = [r for _, r in wl if isinstance(r, WriteRequest)]
        assert 120 <= len(writes) <= 280
        assert any(w.op == "delete" for w in writes)
        assert any(w.op == "insert" for w in writes)
        again = synthetic_workload(
            2000, n, edges=(src, dst), write_fraction=0.1, seed=7
        )
        assert [(t, r.key) for t, r in wl] == [(t, r.key) for t, r in again]

    def test_read_stream_unchanged_by_write_knob(self, edges):
        """write_fraction=0 must consume the exact pre-write RNG
        sequence — read-only workloads stay byte-stable per seed."""
        src, dst, n = edges
        base = synthetic_workload(500, n, edges=(src, dst), seed=3)
        mixed = synthetic_workload(
            500, n, edges=(src, dst), seed=3, write_fraction=0.15
        )
        assert len(base) == len(mixed)
        for (tb, rb), (tm, rm) in zip(base, mixed):
            assert tb == tm
            if not isinstance(rm, WriteRequest):
                assert rb.key == rm.key

    def test_replay_mixed_workload_end_to_end(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n, compact_watermark=64)
        server = GraphQueryServer(
            store, config=ServerConfig(cache_elements=4096), clock=ManualClock()
        )
        wl = synthetic_workload(
            1500, n, edges=(src, dst), write_fraction=0.1, seed=11
        )
        slots = replay(server, wl)
        assert all(s.status == DONE for s in slots)
        snap = server.snapshot()
        n_writes = sum(isinstance(r, WriteRequest) for _, r in wl)
        assert snap.writes == n_writes
        assert snap.completed == len(wl) - n_writes
        # served rows reflect the final post-write state
        for (_, req), slot in zip(wl, slots):
            if isinstance(req, NeighborsRequest):
                last = slot
        assert isinstance(last.result(), np.ndarray)

    def test_workload_validation(self, edges):
        _, _, n = edges
        with pytest.raises(ValidationError):
            synthetic_workload(10, n, write_fraction=1.5)
        with pytest.raises(ValidationError):
            synthetic_workload(10, n, delete_fraction=-0.1)


class TestLsmSegmentRouting:
    def test_server_unwraps_rowcache_for_write_target(self, lsm):
        server = GraphQueryServer(lsm, config=ServerConfig(cache_elements=1024),
                                   clock=ManualClock())
        assert server._write_target is lsm

    def test_multi_segment_store_serves(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n)
        store.insert_edge(0, 33)
        store.flush()
        server = GraphQueryServer(store, config=ServerConfig(max_batch_size=1),
                                   clock=ManualClock())
        slot = server.submit(NeighborsRequest(node=0))
        server.drain()
        assert np.array_equal(slot.result(), store.neighbors(0))
