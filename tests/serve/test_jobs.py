"""Analytics jobs riding the serve loop: coexistence and exactness.

The job API's contract: a long-running algorithm time-slices through
``pump`` without perturbing point traffic — every point reply stays
bit-exact and exactly-once while a job runs, the job's result equals
the batch-path reference regardless of how it was sliced, a routed
cluster job equals the monolithic run, and a failing job resolves its
handle FAILED without taking the serve loop down.
"""

import numpy as np
import pytest

from repro.algorithms import AlgorithmStepper, register_algorithm, run
from repro.algorithms import registry as registry_module
from repro.csr.builder import build_csr_serial
from repro.csr.traversal import bfs_levels
from repro.errors import QueryError, ValidationError
from repro.query import QueryEngine
from repro.serve import (
    DONE,
    FAILED,
    AnalyticsRequest,
    EdgeRequest,
    GraphQueryServer,
    JobHandle,
    ManualClock,
    NeighborsRequest,
    ServerConfig,
    open_server,
)
from repro.stores import open_store


@pytest.fixture
def edges(rng):
    n, m = 80, 700
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    pairs = np.unique(np.stack([src, dst], 1), axis=0)
    return pairs[:, 0], pairs[:, 1], n


@pytest.fixture
def packed(edges):
    src, dst, n = edges
    return open_store("packed", src, dst, n, sort=True)


def _server(store, **knobs):
    return GraphQueryServer(store, config=ServerConfig(**knobs),
                            clock=ManualClock())


class TestSubmitJob:
    def test_submit_rejects_analytics(self, packed):
        server = _server(packed)
        with pytest.raises(ValidationError, match="submit_job"):
            server.submit(AnalyticsRequest(algorithm="bfs"))

    def test_submit_job_rejects_point_requests(self, packed):
        server = _server(packed)
        with pytest.raises(ValidationError, match="AnalyticsRequest"):
            server.submit_job(NeighborsRequest(node=0))

    def test_double_submit_rejected(self, packed):
        server = _server(packed)
        req = AnalyticsRequest(algorithm="bfs", params={"source": 0})
        server.submit_job(req)
        with pytest.raises(ValidationError, match="already submitted"):
            server.submit_job(req)

    def test_unknown_algorithm_raises_at_submit(self, packed):
        server = _server(packed)
        with pytest.raises(ValidationError, match="unknown algorithm"):
            server.submit_job(AnalyticsRequest(algorithm="nope"))
        assert server.active_jobs == 0

    def test_bad_params_raise_at_submit(self, packed):
        server = _server(packed)
        with pytest.raises(QueryError):
            server.submit_job(AnalyticsRequest(
                algorithm="bfs", params={"source": 10**9}))

    def test_handle_progress_surface(self, packed):
        server = _server(packed)
        job = server.submit_job(AnalyticsRequest(
            algorithm="bfs", params={"source": 0, "slice_nodes": 4}))
        assert isinstance(job, JobHandle)
        assert server.active_jobs == 1
        assert not job.ready
        with pytest.raises(ValidationError, match="still running"):
            job.result()
        server.pump()
        assert job.slices == 1
        server.drain()
        assert job.ready and job.status == DONE
        assert server.active_jobs == 0
        assert job.request.complete_ns is not None


class TestCoexistence:
    def test_point_replies_exact_and_once_during_job(self, edges, packed):
        """While a job is sliced through pump, every point reply equals
        the direct engine answer and resolves exactly once."""
        src, dst, n = edges
        engine = QueryEngine(packed)  # independent reference
        ref = bfs_levels(build_csr_serial(src, dst, n, sort=True), 0)
        server = _server(packed, max_batch_size=2, job_slice_steps=1)
        job = server.submit_job(AnalyticsRequest(
            algorithm="bfs", params={"source": 0, "slice_nodes": 8}))
        rng = np.random.default_rng(5)
        slots = []
        while not job.ready:
            if rng.random() < 0.5:
                u = int(rng.integers(0, n))
                slots.append(("n", u, server.submit(NeighborsRequest(node=u))))
            else:
                u, v = (int(x) for x in rng.integers(0, n, 2))
                slots.append(("e", (u, v), server.submit(EdgeRequest(u=u, v=v))))
            server.pump()
        server.drain()
        assert np.array_equal(job.result().value, ref)
        assert len(slots) > 2  # the job genuinely interleaved
        for kind, key, slot in slots:
            assert slot.status == DONE
            if kind == "n":
                assert np.array_equal(slot.result(), engine.neighbors([key])[0])
            else:
                assert slot.result() == bool(engine.has_edges([key])[0])

    def test_slicing_is_observationally_invisible(self, packed):
        """Same result whether the job runs in one drain, tiny pump
        slices, or the batch path."""
        batch = run("pagerank", packed, max_iter=4)
        server = _server(packed, job_slice_steps=3)
        job = server.submit_job(AnalyticsRequest(
            algorithm="pagerank", params={"max_iter": 4, "slice_nodes": 5}))
        pumps = 0
        while not job.ready:
            server.pump()
            pumps += 1
        assert pumps > 1
        assert np.array_equal(job.result().value, batch.value)

    def test_jobs_run_fifo(self, packed):
        server = _server(packed, job_slice_steps=1)
        first = server.submit_job(AnalyticsRequest(
            algorithm="bfs", params={"source": 0, "slice_nodes": 4}))
        second = server.submit_job(AnalyticsRequest(
            algorithm="bfs", params={"source": 1, "slice_nodes": 4}))
        while not first.ready:
            assert second.slices == 0  # strictly behind the front job
            server.pump()
        server.drain()
        assert first.status == DONE and second.status == DONE

    def test_drain_finishes_jobs(self, packed):
        server = _server(packed)
        job = server.submit_job(AnalyticsRequest(
            algorithm="triangles", params={"slice_wedges": 64}))
        server.drain()
        assert job.status == DONE
        assert int(job.result().value) >= 0


class _Explodes(AlgorithmStepper):
    name = "explodes"

    def __init__(self, store, executor=None, *, after=2):
        super().__init__(store, executor)
        self.after = after

    def _advance(self):
        if self.steps > self.after:
            raise RuntimeError("kaboom mid-run")


class TestFailedJobs:
    @pytest.fixture(autouse=True)
    def _register(self):
        register_algorithm("explodes-test", _Explodes, "fails mid-run")
        yield
        registry_module._REGISTRY.pop("explodes-test", None)

    def test_mid_run_failure_is_contained(self, packed):
        """A stepper raising mid-run fails its handle, not the server."""
        server = _server(packed, max_batch_size=1)
        job = server.submit_job(AnalyticsRequest(algorithm="explodes-test"))
        while not job.ready:
            server.pump()
        assert job.status == FAILED
        with pytest.raises(RuntimeError, match="kaboom"):
            job.result()
        assert server.active_jobs == 0
        # serving is unaffected afterwards
        slot = server.submit(NeighborsRequest(node=3))
        server.drain()
        assert slot.status == DONE

    def test_drain_survives_failing_job(self, packed):
        server = _server(packed)
        job = server.submit_job(AnalyticsRequest(algorithm="explodes-test"))
        server.drain()
        assert job.status == FAILED


class TestRouterJobs:
    def _router(self, src, dst, n, **overrides):
        return open_server(ServerConfig(
            store_kind="packed", edges=(src, dst, n),
            store_opts={"sort": True}, workers=4, replicas=2,
            max_batch_size=4, **overrides,
        ))

    def test_router_submit_rejects_analytics(self, edges):
        src, dst, n = edges
        router = self._router(src, dst, n)
        with pytest.raises(ValidationError, match="submit_job"):
            router.submit(AnalyticsRequest(algorithm="bfs"))

    def test_routed_job_equals_monolithic(self, edges, packed):
        """A job over the sharded cluster view is value-identical to
        the monolithic run, with point traffic interleaved."""
        src, dst, n = edges
        mono = run("bfs", packed, source=2)
        router = self._router(src, dst, n, job_slice_steps=2)
        job = router.submit_job(AnalyticsRequest(
            algorithm="bfs", params={"source": 2, "slice_nodes": 16}))
        slots = []
        i = 0
        while not job.ready:
            slots.append((i % n, router.submit(NeighborsRequest(node=i % n))))
            router.pump()
            i += 1
        router.drain()
        assert np.array_equal(job.result().value, mono.value)
        engine = QueryEngine(packed)
        for node, slot in slots:
            assert slot.status == DONE
            assert np.array_equal(slot.result(), engine.neighbors([node])[0])

    def test_routed_pagerank_matches_monolithic(self, edges, packed):
        src, dst, n = edges
        mono = run("pagerank", packed, max_iter=6)
        router = self._router(src, dst, n)
        job = router.submit_job(AnalyticsRequest(
            algorithm="pagerank", params={"max_iter": 6}))
        router.drain()
        assert np.allclose(job.result().value, mono.value, atol=1e-12)

    def test_router_unknown_algorithm_raises_at_submit(self, edges):
        src, dst, n = edges
        router = self._router(src, dst, n)
        with pytest.raises(ValidationError, match="unknown algorithm"):
            router.submit_job(AnalyticsRequest(algorithm="nope"))
        assert router.active_jobs == 0
