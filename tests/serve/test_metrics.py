"""Serve metrics: percentiles, histograms, snapshots, rendering."""

import pytest

from repro.analysis.serving import (
    render_serve_histograms,
    render_serve_metrics,
    render_serve_report,
)
from repro.errors import ValidationError
from repro.serve import ServeMetrics, log2_histogram, quantiles


class TestQuantiles:
    def test_empty_is_zero(self):
        assert quantiles([]) == (0.0, 0.0, 0.0)

    def test_known_values(self):
        p50, p95, p99 = quantiles(list(range(1, 101)))
        assert p50 == pytest.approx(50.5)
        assert p95 == pytest.approx(95.05)
        assert p99 == pytest.approx(99.01)

    def test_single_value(self):
        assert quantiles([42.0]) == (42.0, 42.0, 42.0)

    def test_all_identical(self):
        assert quantiles([7.0] * 50) == (7.0, 7.0, 7.0)

    def test_nan_rejected_with_one_line_error(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="NaN is not a sample"):
            quantiles([1.0, float("nan"), 3.0])


class TestHistogram:
    def test_log2_buckets(self):
        hist = log2_histogram([0, 1, 2, 3, 4, 5, 1000])
        # <=1: {0,1}; <=2: {2}; <=4: {3,4}; <=8: {5}; <=1024: {1000}
        assert hist == {0: 2, 1: 1, 2: 2, 3: 1, 10: 1}

    def test_sorted_keys(self):
        hist = log2_histogram([1000, 1, 30])
        assert list(hist) == sorted(hist)

    def test_empty_is_empty(self):
        assert log2_histogram([]) == {}

    def test_single_sample(self):
        assert log2_histogram([5]) == {3: 1}

    def test_all_identical(self):
        assert log2_histogram([8.0] * 4) == {3: 4}

    def test_nan_rejected_with_one_line_error(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="NaN is not a sample"):
            log2_histogram([1.0, float("nan")])


class TestServeMetrics:
    def _filled(self):
        m = ServeMetrics()
        m.record_depth(3)
        m.record_depth(7)
        m.record_batch(4, "size", 1, 10_000.0)
        m.record_batch(2, "window", 0, 5_000.0)
        for i in range(6):
            m.record_reply(wait_ns=100.0 * i, latency_ns=200.0 * i)
        return m

    def test_snapshot_counters(self):
        snap = self._filled().snapshot()
        assert snap.completed == 6
        assert snap.batches == 2
        assert snap.close_reasons == {"size": 1, "window": 1}
        assert snap.duplicates_coalesced == 1
        assert snap.queue_depth_high_watermark == 7
        assert snap.mean_batch_size == 3.0
        assert snap.service_ns_total == 15_000.0
        assert snap.wait_ns_p50 == pytest.approx(250.0)

    def test_throughput_requires_elapsed(self):
        m = self._filled()
        assert m.snapshot().throughput_rps is None
        assert m.snapshot(elapsed_s=2.0).throughput_rps == pytest.approx(3.0)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValidationError):
            ServeMetrics().record_batch(0, "size", 0, 0.0)

    def test_admission_stats_merge(self):
        from repro.serve import AdmissionController

        ac = AdmissionController(4, "shed-oldest")
        ac.decide(4)  # one shed
        ac.record_admitted(2)
        snap = self._filled().snapshot(ac.stats())
        assert snap.accepted == 1
        assert snap.shed == 1
        assert snap.rejected == 0

    def test_admission_enabled_flag(self):
        from repro.serve import AdmissionController

        # no controller stats: zero rejects means "admission was off",
        # and the snapshot says so instead of implying a perfect run
        assert self._filled().snapshot().admission_enabled is False
        ac = AdmissionController(4, "reject")
        assert self._filled().snapshot(ac.stats()).admission_enabled is True


class TestRendering:
    def test_tables_render(self):
        snap = TestServeMetrics()._filled().snapshot(elapsed_s=1.0)
        text = render_serve_metrics(snap)
        assert "completed" in text and "6" in text
        assert "throughput" in text
        hist = render_serve_histograms(snap)
        assert "batch size" in hist and "wait (ns)" in hist

    def test_report_composes_cache_stats(self):
        import numpy as np

        from repro.csr import build_csr_serial
        from repro.query import RowCache

        rng = np.random.default_rng(3)
        src = np.sort(rng.integers(0, 20, 100))
        g = build_csr_serial(src, rng.integers(0, 20, 100), 20)
        cache = RowCache(g, capacity=500)
        cache.neighbors(1)
        cache.neighbors(1)
        snap = TestServeMetrics()._filled().snapshot()
        text = render_serve_report(snap, cache)
        assert "serving report" in text
        assert "row cache (serve path)" in text
        assert "hit rate" in text

    def test_report_without_cache(self):
        snap = ServeMetrics().snapshot()
        text = render_serve_report(snap)
        assert "row cache" not in text

    def test_admission_off_labelled_not_zero(self):
        text = render_serve_metrics(self._filled_snapshot())
        assert "off (no controller wired)" in text
        assert "rejected" not in text

    def test_admission_on_shows_reject_rows(self):
        from repro.serve import AdmissionController

        ac = AdmissionController(4, "reject")
        snap = TestServeMetrics()._filled().snapshot(ac.stats())
        text = render_serve_metrics(snap)
        assert "rejected" in text
        assert "off (no controller wired)" not in text

    @staticmethod
    def _filled_snapshot():
        return TestServeMetrics()._filled().snapshot()
