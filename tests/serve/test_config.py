"""`ServerConfig` / `open_server` / `load_store` and the removed path.

The unified construction API must validate every knob combination in
one place, pick the right front-end (monolithic server vs cluster
router) from the config alone, reject the removed
``GraphQueryServer(store, **kwargs)`` spelling with a one-line
:class:`ReproError` pointing at :func:`open_server`, and round-trip
saved stores through :func:`repro.stores.load_store`.
"""

import numpy as np
import pytest

from repro.cluster import Router
from repro.csr.builder import build_csr_serial
from repro.csr.packed import BitPackedCSR
from repro.errors import ReproError, ValidationError
from repro.lsm import LsmStore
from repro.serve import GraphQueryServer, ManualClock, ServerConfig, open_server
from repro.stores import load_store


@pytest.fixture
def edges(rng):
    n, m = 30, 200
    src = np.sort(rng.integers(0, n, m))
    dst = rng.integers(0, n, m)
    return src, dst, n


@pytest.fixture
def packed(edges):
    src, dst, n = edges
    return BitPackedCSR.from_csr(build_csr_serial(src, dst, n))


class TestServerConfigValidation:
    """Every illegal knob combination is caught at construction."""

    @pytest.mark.parametrize(
        "bad",
        [
            {"workers": 3, "replicas": 2},
            {"workers": 0},
            {"replicas": 0},
            {"hedge_percentile": 0.0},
            {"hedge_percentile": 100.0},
            {"hedge_percentile": -5.0},
            {"hedge_min_samples": 0},
            {"service": "quantum"},
            {"tenant_quotas": {"free": 0}},
            {"policy": "bogus"},
            {"max_batch_size": 0},
            {"queue_capacity": 0},
            {"max_wait_ns": -1.0},
            {"cache_elements": -1},
            {"write_watermark": -1},
            {"store_kind": "packed"},  # kind without edges
        ],
        ids=lambda bad: next(iter(bad)),
    )
    def test_rejected_knobs(self, bad):
        with pytest.raises(ValidationError):
            ServerConfig(**bad)

    def test_edges_without_kind_rejected(self):
        with pytest.raises(ValidationError):
            ServerConfig(edges=(np.array([0]), np.array([1]), 2))

    def test_two_store_sources_rejected(self, packed, tmp_path):
        with pytest.raises(ValidationError):
            ServerConfig(store=packed, store_path=tmp_path / "g.npz")

    def test_shards_property(self):
        assert ServerConfig(workers=4, replicas=2).shards == 2
        assert ServerConfig().shards == 1

    def test_with_overrides_revalidates(self):
        config = ServerConfig(workers=4, replicas=2)
        assert config.with_overrides(workers=8).shards == 4
        with pytest.raises(ValidationError):
            config.with_overrides(workers=5)


class TestWantsCluster:
    """The auto-rule that flips open_server to the router."""

    @pytest.mark.parametrize(
        "knobs,expected",
        [
            ({}, False),
            ({"workers": 2}, True),
            ({"workers": 2, "replicas": 2}, True),
            ({"hedge_percentile": 75.0}, True),
            ({"tenant_quotas": {"free": 8}}, True),
            ({"workers": 4, "cluster": False}, False),
            ({"cluster": True}, True),
        ],
        ids=["default", "workers", "replicas", "hedge", "quotas",
             "forced-off", "forced-on"],
    )
    def test_rule(self, knobs, expected):
        assert ServerConfig(**knobs).wants_cluster is expected


class TestOpenServer:
    """open_server picks the front-end the config describes."""

    def test_plain_config_builds_monolithic_server(self, edges):
        src, dst, n = edges
        server = open_server(ServerConfig(
            store_kind="packed", edges=(src, dst, n), max_batch_size=8,
        ))
        assert isinstance(server, GraphQueryServer)
        assert server.config.max_batch_size == 8
        assert int(server.store.num_nodes) == n

    def test_cluster_config_builds_router(self, edges):
        src, dst, n = edges
        router = open_server(
            ServerConfig(store_kind="packed", edges=(src, dst, n),
                         workers=4, replicas=2),
            clock=ManualClock(),
        )
        assert isinstance(router, Router)
        assert len(router.workers) == 4
        assert router.num_shards == 2
        # replicas of one shard share the same store object
        assert router.workers[0].server.store is router.workers[1].server.store

    def test_forced_cluster_with_one_worker(self, edges):
        src, dst, n = edges
        router = open_server(
            ServerConfig(store_kind="packed", edges=(src, dst, n),
                         cluster=True),
            clock=ManualClock(),
        )
        assert isinstance(router, Router)
        assert router.num_shards == 1

    def test_forced_off_keeps_monolithic(self, packed):
        server = open_server(ServerConfig(
            store=packed, tenant_quotas={"free": 8}, cluster=False,
        ))
        assert isinstance(server, GraphQueryServer)

    def test_cluster_rejects_write_watermark(self, packed):
        with pytest.raises(ValidationError):
            open_server(ServerConfig(store=packed, workers=2,
                                     write_watermark=1024))

    def test_write_watermark_wraps_read_only_store(self, packed):
        server = open_server(ServerConfig(store=packed,
                                          write_watermark=1024))
        assert isinstance(server.store, LsmStore)
        assert server.store.compact_watermark == 1024

    def test_requires_a_store_source(self):
        with pytest.raises(ValidationError):
            open_server(ServerConfig())

    def test_rejects_non_config(self, packed):
        with pytest.raises(ValidationError):
            open_server(packed)


class TestLegacyConstructionRemoved:
    """The old kwargs spelling is gone: one-line error, no silent drift."""

    def test_legacy_kwargs_raise_repro_error(self, packed):
        with pytest.raises(ReproError, match="open_server"):
            GraphQueryServer(packed, max_batch_size=8,
                             queue_capacity=32, policy="block")

    def test_error_names_the_offending_kwargs(self, packed):
        with pytest.raises(ReproError, match="max_batch_size"):
            GraphQueryServer(packed, max_batch_size=8)

    def test_unknown_kwarg_also_raises(self, packed):
        # even a typo'd knob takes the same removal path — there is no
        # kwargs surface left to validate against
        with pytest.raises(ReproError, match="max_batch_sise"):
            GraphQueryServer(packed, max_batch_sise=8)

    def test_bare_construction_still_works(self, packed):
        server = GraphQueryServer(packed)
        assert server.config.max_batch_size == ServerConfig().max_batch_size

    def test_config_construction_works(self, packed):
        server = GraphQueryServer(packed,
                                  config=ServerConfig(max_batch_size=4))
        assert server.config.max_batch_size == 4


class TestLoadStore:
    """load_store: the load-side twin of open_store."""

    def test_round_trips_saved_packed_store(self, packed, tmp_path):
        path = tmp_path / "graph.npz"
        packed.save(path)
        loaded = load_store(path)
        assert int(loaded.num_nodes) == int(packed.num_nodes)
        for u in range(int(packed.num_nodes)):
            assert np.array_equal(loaded.neighbors(u), packed.neighbors(u))

    def test_store_path_config_resolves(self, packed, tmp_path):
        path = tmp_path / "graph.npz"
        packed.save(path)
        server = open_server(ServerConfig(store_path=path))
        assert int(server.store.num_nodes) == int(packed.num_nodes)

    def test_unrecognised_path_raises(self, tmp_path):
        bogus = tmp_path / "not-a-store.txt"
        bogus.write_text("nope")
        with pytest.raises(ReproError):
            load_store(bogus)
