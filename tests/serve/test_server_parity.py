"""Property tests: served replies are bit-exact and exactly-once.

For random interleavings of neighbour and edge requests over every
registered store representation × serial/simulated executors × every
admission policy, :class:`GraphQueryServer` must (a) answer every
completed ticket bit-exactly as a direct per-request
:class:`QueryEngine` call would, and (b) resolve every submitted
ticket exactly once — done, rejected, or shed — with nothing pending
after drain.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import AdjacencyListStore, EdgeListStore
from repro.csr.builder import build_csr_serial, ensure_sorted
from repro.csr.packed import BitPackedCSR
from repro.parallel import SerialExecutor, SimulatedMachine
from repro.query import QueryEngine
from repro.serve import (
    DONE,
    REJECTED,
    SHED,
    EdgeRequest,
    GraphQueryServer,
    ManualClock,
    NeighborsRequest,
    ServerConfig,
)

STORE_BUILDERS = {
    "csr": lambda src, dst, n: build_csr_serial(src, dst, n),
    "packed": lambda src, dst, n: BitPackedCSR.from_csr(build_csr_serial(src, dst, n)),
    "gap": lambda src, dst, n: BitPackedCSR.from_csr(
        build_csr_serial(src, dst, n), gap_encode=True
    ),
    "adjlist": AdjacencyListStore,
    "edgelist": EdgeListStore,
}

EXECUTORS = [
    ("serial", lambda: SerialExecutor()),
    ("sim-p1", lambda: SimulatedMachine(1)),
    ("sim-p4", lambda: SimulatedMachine(4)),
]


@st.composite
def edge_lists(draw):
    n = draw(st.integers(1, 20))
    m = draw(st.integers(0, 60))
    src = np.asarray(
        draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)), dtype=np.int64
    )
    dst = np.asarray(
        draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)), dtype=np.int64
    )
    src, dst = ensure_sorted(src, dst)
    return src, dst, n


@st.composite
def request_streams(draw, n):
    """A random interleaving of neighbour and edge requests with gaps."""
    k = draw(st.integers(0, 40))
    stream = []
    t = 0.0
    for _ in range(k):
        t += draw(st.integers(0, 300))
        if draw(st.booleans()):
            stream.append((t, NeighborsRequest(node=draw(st.integers(0, n - 1)))))
        else:
            stream.append(
                (t, EdgeRequest(u=draw(st.integers(0, n - 1)),
                                v=draw(st.integers(0, n - 1))))
            )
    return stream


def _assert_reply_correct(slot, engine):
    req = slot.request
    if isinstance(req, NeighborsRequest):
        want = engine.neighbors([req.node])[0]
        got = slot.result()
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)
    else:
        assert slot.result() == bool(engine.has_edges([(req.u, req.v)])[0])


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(), edges=edge_lists())
@pytest.mark.parametrize("exec_name,make_executor", EXECUTORS,
                         ids=[e[0] for e in EXECUTORS])
@pytest.mark.parametrize("store_name", sorted(STORE_BUILDERS))
def test_served_replies_bit_exact(store_name, exec_name, make_executor, data, edges):
    """Coalesced serving equals direct per-request engine calls."""
    src, dst, n = edges
    store = STORE_BUILDERS[store_name](src, dst, n)
    engine = QueryEngine(store)  # independent serial reference
    clock = ManualClock()
    server = GraphQueryServer(
        store,
        make_executor(),
        config=ServerConfig(
            max_batch_size=data.draw(st.integers(1, 8)),
            max_wait_ns=float(data.draw(st.integers(0, 500))),
            queue_capacity=1 << 16,
        ),
        clock=clock,
    )
    slots = []
    for arrival, req in data.draw(request_streams(n)):
        clock.advance_to(arrival)
        server.pump(clock())
        slots.append(server.submit(req))
    server.drain()
    for slot in slots:
        assert slot.status == DONE
        _assert_reply_correct(slot, engine)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(), edges=edge_lists())
@pytest.mark.parametrize("policy", ["reject", "shed-oldest", "block"])
def test_every_ticket_resolved_exactly_once(policy, data, edges):
    """Under any admission policy every submitted ticket ends in exactly
    one terminal state, completed ones bit-exact, none left pending."""
    src, dst, n = edges
    store = STORE_BUILDERS["packed"](src, dst, n)
    engine = QueryEngine(store)
    clock = ManualClock()
    server = GraphQueryServer(
        store,
        config=ServerConfig(
            max_batch_size=data.draw(st.integers(1, 6)),
            max_wait_ns=float(data.draw(st.integers(0, 1000))),
            queue_capacity=data.draw(st.integers(1, 6)),
            policy=policy,
        ),
        clock=clock,
    )
    slots = []
    for arrival, req in data.draw(request_streams(n)):
        clock.advance_to(arrival)
        slots.append(server.submit(req))
    server.drain()

    # ReplySlot._resolve raises on double resolution, so reaching a
    # terminal state here proves exactly-once delivery
    assert all(s.ready for s in slots)
    statuses = [s.status for s in slots]
    snap = server.snapshot()
    assert statuses.count(DONE) == snap.completed
    assert statuses.count(REJECTED) == snap.rejected
    assert statuses.count(SHED) == snap.shed
    assert snap.completed + snap.shed == snap.accepted
    assert len(slots) == snap.accepted + snap.rejected
    for slot in slots:
        if slot.status == DONE:
            _assert_reply_correct(slot, engine)


class TestServerSurface:
    """Non-property behaviours of the server object itself."""

    @pytest.fixture
    def packed(self, rng):
        n, m = 30, 200
        src = np.sort(rng.integers(0, n, m))
        dst = rng.integers(0, n, m)
        return BitPackedCSR.from_csr(build_csr_serial(src, dst, n))

    def test_rejects_unknown_request_type(self, packed):
        from repro.errors import ValidationError

        server = GraphQueryServer(packed)
        with pytest.raises(ValidationError):
            server.submit(object())

    def test_double_submit_rejected(self, packed):
        from repro.errors import ValidationError

        server = GraphQueryServer(packed, config=ServerConfig(max_batch_size=1))
        req = NeighborsRequest(node=0)
        server.submit(req)
        with pytest.raises(ValidationError):
            server.submit(req)

    def test_cache_elements_wraps_store(self, packed):
        server = GraphQueryServer(packed, config=ServerConfig(cache_elements=1000))
        assert server.row_cache is not None
        assert server.row_cache.store is packed
        server.submit(NeighborsRequest(node=3))
        server.submit(NeighborsRequest(node=3))
        server.drain()
        assert server.row_cache.stats().misses >= 1

    def test_dedup_identical_results_per_ticket(self, packed):
        """Dedup routes duplicate tickets to one lane; both replies are
        the (bit-exact) row."""
        server = GraphQueryServer(
            packed, config=ServerConfig(max_batch_size=4, max_wait_ns=1 << 40),
            clock=ManualClock())
        a = server.submit(NeighborsRequest(node=5))
        b = server.submit(NeighborsRequest(node=5))
        server.drain()
        assert server.snapshot().duplicates_coalesced == 1
        assert np.array_equal(a.result(), b.result())

    def test_timestamps_ordered(self, packed):
        clock = ManualClock()
        server = GraphQueryServer(
            packed, config=ServerConfig(max_batch_size=10, max_wait_ns=500),
            clock=clock)
        slot = server.submit(NeighborsRequest(node=1))
        clock.advance(2_000)
        server.pump(clock())
        req = slot.request
        assert req.enqueue_ns == 0.0
        assert req.dispatch_ns == 500.0  # analytic window close
        assert req.complete_ns >= req.dispatch_ns
        assert req.wait_ns == 500.0
        assert req.latency_ns >= 500.0
