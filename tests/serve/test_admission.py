"""Admission control: bounded queues, overload policies, backpressure.

Exercised both as a bare policy object and end-to-end through
:class:`GraphQueryServer` on a deterministic clock, asserting the
overload contract: reject refuses the newcomer, shed-oldest evicts the
longest-queued ticket, block serves a batch to make room, and the
queue never exceeds its capacity under any policy.
"""

import numpy as np
import pytest

from repro.csr import build_csr_serial
from repro.errors import AdmissionError, ValidationError
from repro.serve import (
    DONE,
    REJECTED,
    SHED,
    AdmissionController,
    GraphQueryServer,
    ManualClock,
    NeighborsRequest,
    ServerConfig,
)


@pytest.fixture
def store(rng):
    n, m = 50, 600
    src = np.sort(rng.integers(0, n, m))
    dst = rng.integers(0, n, m)
    return build_csr_serial(src, dst, n)


def _server(store, policy, *, capacity=4, batch=100):
    clock = ManualClock()
    # a huge window so nothing closes on its own: overload is the test
    srv = GraphQueryServer(
        store,
        config=ServerConfig(
            max_batch_size=batch,
            max_wait_ns=1 << 50,
            queue_capacity=capacity,
            policy=policy,
        ),
        clock=clock,
    )
    return srv, clock


class TestController:
    def test_validation(self):
        with pytest.raises(ValidationError):
            AdmissionController(0)
        with pytest.raises(ValidationError):
            AdmissionController(4, "drop-everything")

    def test_decisions_and_counters(self):
        ac = AdmissionController(2, "reject")
        assert ac.decide(0) == "accept"
        assert ac.decide(1) == "accept"
        assert ac.decide(2) == "reject"
        ac.record_admitted(1)
        ac.record_admitted(2)
        s = ac.stats()
        assert (s.accepted, s.rejected, s.high_watermark) == (2, 1, 2)
        assert s.submitted == 3

    @pytest.mark.parametrize("policy,decision", [
        ("reject", "reject"), ("shed-oldest", "shed"), ("block", "block"),
    ])
    def test_policy_overload_decision(self, policy, decision):
        ac = AdmissionController(1, policy)
        assert ac.decide(1) == decision


class TestRejectPolicy:
    def test_newcomers_refused_at_capacity(self, store):
        srv, _ = _server(store, "reject", capacity=3)
        slots = [srv.submit(NeighborsRequest(node=i)) for i in range(5)]
        assert [s.status for s in slots[:3]] == ["pending"] * 3
        assert [s.status for s in slots[3:]] == [REJECTED] * 2
        with pytest.raises(AdmissionError):
            slots[3].result()
        srv.drain()
        assert all(s.status == DONE for s in slots[:3])
        snap = srv.snapshot()
        assert (snap.accepted, snap.rejected, snap.completed) == (3, 2, 3)


class TestShedOldestPolicy:
    def test_oldest_evicted_newest_admitted(self, store):
        srv, _ = _server(store, "shed-oldest", capacity=3)
        slots = [srv.submit(NeighborsRequest(node=i)) for i in range(5)]
        # 0 and 1 were the oldest when 3 and 4 arrived
        assert [s.status for s in slots] == [SHED, SHED, "pending", "pending", "pending"]
        srv.drain()
        assert [s.status for s in slots[2:]] == [DONE] * 3
        snap = srv.snapshot()
        assert snap.shed == 2
        assert snap.accepted == 5  # all five were admitted at some point
        assert snap.completed == 3

    def test_shed_slot_raises_on_result(self, store):
        srv, _ = _server(store, "shed-oldest", capacity=1)
        first = srv.submit(NeighborsRequest(node=0))
        srv.submit(NeighborsRequest(node=1))
        assert first.status == SHED
        with pytest.raises(AdmissionError):
            first.result()


class TestBlockPolicy:
    def test_backpressure_serves_to_make_room(self, store):
        srv, _ = _server(store, "block", capacity=3)
        slots = [srv.submit(NeighborsRequest(node=i)) for i in range(7)]
        # every overflow submit forced a dispatch: nothing lost, nothing shed
        srv.drain()
        assert all(s.status == DONE for s in slots)
        snap = srv.snapshot()
        assert snap.completed == 7
        assert snap.rejected == snap.shed == 0
        # submits 3 and 6 found the queue full; each forced one dispatch
        assert snap.blocked == 2

    def test_block_with_small_batches(self, store):
        srv, _ = _server(store, "block", capacity=4, batch=2)
        slots = [srv.submit(NeighborsRequest(node=i % 5)) for i in range(20)]
        srv.drain()
        assert all(s.status == DONE for s in slots)


class TestQueueBound:
    @pytest.mark.parametrize("policy", ["reject", "shed-oldest", "block"])
    def test_depth_never_exceeds_capacity(self, store, policy):
        srv, _ = _server(store, policy, capacity=5)
        for i in range(50):
            srv.submit(NeighborsRequest(node=i % 10))
            assert srv.coalescer.pending <= 5
        assert srv.snapshot().queue_depth_high_watermark <= 5
