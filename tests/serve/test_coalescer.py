"""Deterministic-clock unit tests for the micro-batch coalescer.

Every closure rule is pinned against a hand-advanced clock: size
before window, window before size, flush-on-shutdown, forced closure,
and the analytic (poll-cadence-independent) window close stamp.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.serve import (
    EdgeRequest,
    ManualClock,
    MicroBatchCoalescer,
    NeighborsRequest,
)


def _req(node, clock):
    r = NeighborsRequest(node=node)
    r.enqueue_ns = clock()
    return r


@pytest.fixture
def clock():
    return ManualClock()


class TestSizeClosure:
    def test_batch_closes_on_size_before_window(self, clock):
        co = MicroBatchCoalescer(max_batch_size=3, max_wait_ns=1_000_000, clock=clock)
        for i in range(3):
            co.offer(_req(i, clock))
            clock.advance(10)  # far inside the window
        batch = co.poll()
        assert batch is not None
        assert batch.closed_by == "size"
        assert len(batch) == 3
        assert co.pending == 0

    def test_no_close_below_size_inside_window(self, clock):
        co = MicroBatchCoalescer(max_batch_size=3, max_wait_ns=1_000, clock=clock)
        co.offer(_req(0, clock))
        co.offer(_req(1, clock))
        clock.advance(999)  # window not yet expired
        assert co.poll() is None
        assert co.pending == 2

    def test_size_closure_takes_exactly_max(self, clock):
        co = MicroBatchCoalescer(max_batch_size=2, max_wait_ns=10, clock=clock)
        for i in range(5):
            co.offer(_req(i, clock))
        first = co.poll()
        second = co.poll()
        assert [len(first), len(second)] == [2, 2]
        assert co.pending == 1


class TestWindowClosure:
    def test_batch_closes_on_window_before_size(self, clock):
        co = MicroBatchCoalescer(max_batch_size=100, max_wait_ns=500, clock=clock)
        co.offer(_req(0, clock))
        clock.advance(100)
        co.offer(_req(1, clock))
        assert co.poll() is None  # oldest waited only 100
        clock.advance(400)  # oldest hits exactly 500
        batch = co.poll()
        assert batch is not None
        assert batch.closed_by == "window"
        assert len(batch) == 2  # partial batch: whatever was queued

    def test_window_close_stamp_is_analytic(self, clock):
        """The close time is enqueue+window, not when the poll ran."""
        co = MicroBatchCoalescer(max_batch_size=100, max_wait_ns=500, clock=clock)
        co.offer(_req(0, clock))
        clock.advance(5_000)  # poll runs much later
        batch = co.poll()
        assert batch.closed_ns == 500.0

    def test_zero_window_drains_every_poll(self, clock):
        co = MicroBatchCoalescer(max_batch_size=100, max_wait_ns=0, clock=clock)
        co.offer(_req(0, clock))
        batch = co.poll()
        assert batch is not None and len(batch) == 1
        assert batch.closed_by == "window"


class TestFlush:
    def test_flush_drains_queue_in_capped_batches(self, clock):
        co = MicroBatchCoalescer(max_batch_size=4, max_wait_ns=1 << 40, clock=clock)
        for i in range(10):
            co.offer(_req(i, clock))
        batches = co.flush()
        assert [len(b) for b in batches] == [4, 4, 2]
        assert all(b.closed_by == "flush" for b in batches)
        assert co.pending == 0
        # FIFO order preserved across the split
        nodes = [r.node for b in batches for r in b.requests]
        assert nodes == list(range(10))

    def test_flush_empty_is_noop(self, clock):
        co = MicroBatchCoalescer(clock=clock)
        assert co.flush() == []

    def test_close_batch_forces_one(self, clock):
        co = MicroBatchCoalescer(max_batch_size=4, max_wait_ns=1 << 40, clock=clock)
        assert co.close_batch() is None
        for i in range(6):
            co.offer(_req(i, clock))
        batch = co.close_batch()
        assert len(batch) == 4
        assert co.pending == 2


class TestDedup:
    def test_in_batch_dedup_one_reply_lane_per_key(self, clock):
        """Repeated hot keys collapse to one kernel lane while every
        ticket keeps its own position in the plan."""
        co = MicroBatchCoalescer(max_batch_size=8, max_wait_ns=0, clock=clock)
        reqs = [
            NeighborsRequest(node=7),
            NeighborsRequest(node=7),
            EdgeRequest(u=1, v=2),
            NeighborsRequest(node=3),
            EdgeRequest(u=1, v=2),
            NeighborsRequest(node=7),
        ]
        for r in reqs:
            r.enqueue_ns = clock()
            co.offer(r)
        plan = co.poll().plan
        assert plan.unique_nodes.tolist() == [7, 3]
        assert plan.node_lane == (0, 0, 1, 0)
        assert plan.unique_edges.tolist() == [[1, 2]]
        assert plan.edge_lane == (0, 0)
        # one lane assignment per submitted ticket
        assert len(plan.node_lane) + len(plan.edge_lane) == len(reqs)
        assert plan.duplicates == 3

    def test_plan_empty_kinds(self, clock):
        co = MicroBatchCoalescer(max_batch_size=2, max_wait_ns=0, clock=clock)
        r = EdgeRequest(u=0, v=1)
        r.enqueue_ns = clock()
        co.offer(r)
        plan = co.poll().plan
        assert plan.unique_nodes.shape == (0,)
        assert plan.unique_edges.shape == (1, 2)
        assert plan.unique_edges.dtype == np.int64


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValidationError):
            MicroBatchCoalescer(max_batch_size=0)
        with pytest.raises(ValidationError):
            MicroBatchCoalescer(max_wait_ns=-1)

    def test_manual_clock_monotone(self):
        clock = ManualClock(5)
        with pytest.raises(ValidationError):
            clock.advance(-1)
        clock.advance_to(3)  # past target: no-op, never rewinds
        assert clock() == 5
