"""Workload generation: determinism, mix, schedule, and replay."""

import numpy as np
import pytest

from repro.csr import build_csr_serial
from repro.errors import ValidationError
from repro.serve import (
    DONE,
    EdgeRequest,
    GraphQueryServer,
    ManualClock,
    NeighborsRequest,
    ServerConfig,
    replay,
    synthetic_workload,
    zipf_nodes,
)


def _keys(workload):
    return [(t, r.key) for t, r in workload]


class TestSyntheticWorkload:
    def test_deterministic_per_seed(self):
        a = synthetic_workload(200, 100, seed=5)
        b = synthetic_workload(200, 100, seed=5)
        c = synthetic_workload(200, 100, seed=6)
        assert _keys(a) == _keys(b)
        assert _keys(a) != _keys(c)

    def test_arrivals_monotone_nondecreasing(self):
        wl = synthetic_workload(500, 50, mean_interarrival_ns=700, seed=1)
        arrivals = [t for t, _ in wl]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0

    def test_zero_interarrival_all_at_origin(self):
        wl = synthetic_workload(50, 10, mean_interarrival_ns=0, seed=1)
        assert all(t == 0.0 for t, _ in wl)

    def test_edge_fraction_mix(self):
        wl = synthetic_workload(2000, 100, edge_fraction=0.5, seed=2)
        n_edge = sum(isinstance(r, EdgeRequest) for _, r in wl)
        assert 800 < n_edge < 1200
        wl = synthetic_workload(200, 100, edge_fraction=0.0, seed=2)
        assert all(isinstance(r, NeighborsRequest) for _, r in wl)

    def test_planted_edges_hit(self, rng):
        from repro.csr.builder import ensure_sorted

        n, m = 40, 400
        src, dst = ensure_sorted(rng.integers(0, n, m), rng.integers(0, n, m))
        g = build_csr_serial(src, dst, n)
        wl = synthetic_workload(600, n, edge_fraction=1.0,
                                edges=(src, dst), seed=9)
        hits = sum(g.has_edge(r.u, r.v) for _, r in wl)
        assert hits > 150  # ~half are planted, so well above random

    def test_zipf_skews_to_low_ids(self):
        nodes = zipf_nodes(5000, 1000, 1.3, np.random.default_rng(0))
        assert nodes.min() >= 0 and nodes.max() < 1000
        assert np.mean(nodes < 10) > 0.5  # celebrity mass

    def test_uniform_kind(self):
        wl = synthetic_workload(2000, 1000, kind="uniform",
                                edge_fraction=0.0, seed=3)
        nodes = np.array([r.node for _, r in wl])
        assert np.mean(nodes < 10) < 0.1

    def test_validation(self):
        with pytest.raises(ValidationError):
            synthetic_workload(10, 10, kind="bursty")
        with pytest.raises(ValidationError):
            synthetic_workload(10, 10, edge_fraction=1.5)
        with pytest.raises(ValidationError):
            zipf_nodes(5, 10, 1.0, np.random.default_rng(0))


class TestReplay:
    @pytest.fixture
    def store(self, rng):
        n, m = 60, 500
        src = np.sort(rng.integers(0, n, m))
        return build_csr_serial(src, rng.integers(0, n, m), n)

    def test_replay_needs_manual_clock(self, store):
        server = GraphQueryServer(store)  # wall clock
        with pytest.raises(ValidationError):
            replay(server, [])

    def test_replay_serves_everything_deterministically(self, store):
        def run():
            clock = ManualClock()
            server = GraphQueryServer(
                store, config=ServerConfig(max_batch_size=8, max_wait_ns=2_000),
                clock=clock)
            wl = synthetic_workload(300, store.num_nodes,
                                    mean_interarrival_ns=500,
                                    edge_fraction=0.3, seed=11)
            slots = replay(server, wl)
            return slots, server.snapshot()

        slots_a, snap_a = run()
        slots_b, snap_b = run()
        assert all(s.status == DONE for s in slots_a)
        assert snap_a.batches == snap_b.batches
        assert snap_a.close_reasons == snap_b.close_reasons
        assert snap_a.wait_ns_p95 == snap_b.wait_ns_p95
        assert snap_a.latency_ns_p99 == snap_b.latency_ns_p99
        for a, b in zip(slots_a, slots_b):
            assert a.request.wait_ns == b.request.wait_ns
