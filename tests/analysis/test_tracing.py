"""Trace summaries of the simulated machine."""

import numpy as np
import pytest

from repro.analysis.tracing import (
    render_trace,
    serial_fraction,
    summarize_trace,
)
from repro.csr import build_bitpacked_csr
from repro.csr.builder import ensure_sorted
from repro.errors import ValidationError
from repro.parallel import SimulatedMachine


@pytest.fixture
def traced_machine(rng):
    n, m = 500, 8000
    src, dst = ensure_sorted(rng.integers(0, n, m), rng.integers(0, n, m))
    machine = SimulatedMachine(8, record_trace=True)
    build_bitpacked_csr(src, dst, n, machine)
    return machine


class TestSummarize:
    def test_shares_sum_to_one(self, traced_machine):
        summaries = summarize_trace(traced_machine)
        assert sum(s.share for s in summaries) == pytest.approx(1.0)
        assert summaries == sorted(summaries, key=lambda s: -s.total_ns)

    def test_expected_phases_present(self, traced_machine):
        labels = {s.label for s in summarize_trace(traced_machine)}
        assert {"degree:count", "scan:local", "build:scatter",
                "bitpack:jA:pack", "bitpack:jA:merge"} <= labels

    def test_merge_is_serial_kind(self, traced_machine):
        kinds = {s.label: s.kind for s in summarize_trace(traced_machine)}
        assert kinds["bitpack:jA:merge"] == "serial"
        assert kinds["scan:carry"] == "locked"
        assert kinds["degree:count"] == "parallel"

    def test_requires_trace(self):
        with pytest.raises(ValidationError, match="record_trace"):
            summarize_trace(SimulatedMachine(2))


class TestSerialFraction:
    def test_between_zero_and_one(self, traced_machine):
        frac = serial_fraction(traced_machine)
        assert 0.0 < frac < 1.0

    def test_empty_trace_is_zero(self):
        machine = SimulatedMachine(2, record_trace=True)
        assert serial_fraction(machine) == 0.0

    def test_floors_the_speedup(self, rng):
        """T_p can never beat the structural serial fraction."""
        n, m = 300, 6000
        src, dst = ensure_sorted(rng.integers(0, n, m), rng.integers(0, n, m))
        m1 = SimulatedMachine(1, record_trace=True)
        build_bitpacked_csr(src, dst, n, m1)
        frac = serial_fraction(m1)
        m64 = SimulatedMachine(64)
        build_bitpacked_csr(src, dst, n, m64)
        # simulated T64 >= serial part of T1 (sync costs make it strict)
        assert m64.elapsed_ns() >= frac * m1.elapsed_ns() * 0.95


class TestRender:
    def test_renders_table(self, traced_machine):
        out = render_trace(traced_machine, title="T")
        assert out.splitlines()[0] == "T"
        assert "bitpack:jA:merge" in out
        assert "share" in out
