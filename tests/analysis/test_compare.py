"""Shape-verdict checkers: pass on good curves, fail on broken ones."""

import pytest

from repro.analysis.compare import (
    ShapeCheck,
    check_fig6,
    check_fig7,
    check_table2,
    render_checks,
)
from repro.analysis.experiments import Table2Result, Table2Row
from repro.analysis.speedup import SpeedupCurve
from repro.parallel.cost import DEFAULT_COST_MODEL


def make_result(times_by_graph, edges_by_graph=None, csr_frac=0.2):
    rows = []
    for graph, times in times_by_graph.items():
        edges = (edges_by_graph or {}).get(graph, 1000)
        el = edges * 10
        t1 = times[1]
        for p, t in sorted(times.items()):
            rows.append(
                Table2Row(
                    graph=graph,
                    num_nodes=edges // 10,
                    num_edges=edges,
                    edgelist_bytes=el,
                    csr_bytes=int(el * csr_frac),
                    processors=p,
                    time_ms=t,
                    speedup_pct=None if p == 1 else (1 - t / t1) * 100,
                )
            )
    return Table2Result(rows=rows, scale=1.0, cost_model=DEFAULT_COST_MODEL)


GOOD_TIMES = {1: 100.0, 4: 30.0, 8: 18.0, 16: 12.0, 64: 8.0}


class TestTable2Checks:
    def test_good_result_passes(self):
        result = make_result(
            {"a": GOOD_TIMES, "b": {p: 2 * t for p, t in GOOD_TIMES.items()}},
            edges_by_graph={"a": 1000, "b": 2000},
        )
        checks = check_table2(result)
        assert all(c.passed for c in checks)
        assert len(checks) == 4

    def test_non_monotone_fails(self):
        bad = dict(GOOD_TIMES)
        bad[64] = 50.0  # worse than p=16
        checks = check_table2(make_result({"a": bad}))
        claims = {c.claim: c.passed for c in checks}
        assert not claims["construction time decreases monotonically with processors"]

    def test_out_of_band_speedup_fails(self):
        checks = check_table2(make_result({"a": {1: 100.0, 4: 99.0, 64: 98.0}}))
        assert not all(c.passed for c in checks)

    def test_size_ordering_mismatch_fails(self):
        result = make_result(
            {"small": GOOD_TIMES, "big": {p: t / 2 for p, t in GOOD_TIMES.items()}},
            edges_by_graph={"small": 100, "big": 10_000},
        )
        claims = {c.claim: c.passed for c in check_table2(result)}
        assert not claims["construction time ordering tracks problem size (n + m)"]

    def test_csr_bigger_than_edgelist_fails(self):
        checks = check_table2(make_result({"a": GOOD_TIMES}, csr_frac=2.0))
        claims = {c.claim: c.passed for c in checks}
        assert not claims["bit-packed CSR smaller than the text edge list"]


def make_curves(times):
    return {"g": SpeedupCurve("g", times)}


class TestFigChecks:
    def test_fig6_good(self):
        full = {1: 100.0, 2: 55.0, 4: 30.0, 8: 18.0, 16: 12.0, 32: 9.5, 64: 8.0}
        assert all(c.passed for c in check_fig6(make_curves(full)))

    def test_fig6_no_rapid_decline_fails(self):
        flat = {1: 100.0, 2: 95.0, 4: 90.0, 8: 85.0, 16: 80.0, 32: 75.0, 64: 70.0}
        checks = check_fig6(make_curves(flat))
        assert not all(c.passed for c in checks)

    def test_fig7_good(self):
        full = {1: 100.0, 2: 55.0, 4: 30.0, 8: 18.0, 16: 12.0, 32: 9.5, 64: 8.0}
        checks = check_fig7(make_curves(full))
        assert all(c.passed for c in checks)

    def test_fig7_perfectly_linear_fails_saturation(self):
        linear = {p: 100.0 / p for p in (1, 2, 4, 8, 16, 32, 64)}
        checks = check_fig7(make_curves(linear))
        claims = {c.claim: c.passed for c in checks}
        assert not claims["curves saturate (nonzero Amdahl serial fraction)"]


class TestRender:
    def test_render_marks_verdicts(self):
        out = render_checks(
            "t",
            [ShapeCheck("claim-a", True, "ok"), ShapeCheck("claim-b", False, "nope")],
        )
        assert "PASS" in out and "FAIL" in out
        assert "claim-b" in out
