"""The experiment harness (Table II / Figs 6-7 reproduction paths).

Runs at a tiny scale so the test suite stays fast; the benches run the
full default scale.
"""

import pytest

from repro.analysis.experiments import (
    Table2Result,
    fig7_from_fig6,
    render_fig6,
    render_fig7,
    run_fig6,
    run_table2,
)

SMALL = dict(scale=1 / 2000, min_edges=6000, graphs=("pokec", "webnotredame"))


@pytest.fixture(scope="module")
def table2():
    return run_table2(processors=(1, 4, 16), **SMALL)


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(processors=(1, 4, 16), **SMALL)


class TestTable2:
    def test_row_grid_complete(self, table2):
        assert isinstance(table2, Table2Result)
        graphs = {r.graph for r in table2.rows}
        assert graphs == {"pokec", "webnotredame"}
        for g in graphs:
            ps = [r.processors for r in table2.rows if r.graph == g]
            assert ps == [1, 4, 16]

    def test_speedup_column_consistency(self, table2):
        for g in ("pokec", "webnotredame"):
            rows = [r for r in table2.rows if r.graph == g]
            t1 = next(r.time_ms for r in rows if r.processors == 1)
            for r in rows:
                if r.processors == 1:
                    assert r.speedup_pct is None
                else:
                    assert r.speedup_pct == pytest.approx(
                        (1 - r.time_ms / t1) * 100, abs=1e-6
                    )

    def test_parallel_always_helps_at_this_scale(self, table2):
        for g in ("pokec", "webnotredame"):
            times = table2.times(g)
            assert times[4] < times[1]
            assert times[16] < times[4]

    def test_csr_smaller_than_edgelist(self, table2):
        for r in table2.rows:
            assert r.csr_bytes < r.edgelist_bytes

    def test_render_contains_paper_columns(self, table2):
        text = table2.render()
        for col in ("Graph", "# Nodes", "# Edges", "EdgeList Size", "CSR",
                    "# Proc", "Time (ms)", "Speed-Up (%)"):
            assert col in text

    def test_projection_render(self, table2):
        text = table2.render_projection()
        assert "paper CSR" in text and "pokec" in text


class TestFigures:
    def test_fig6_curves_monotone_decreasing(self, fig6):
        for curve in fig6.values():
            times = [curve.times_ms[p] for p in sorted(curve.times_ms)]
            assert times == sorted(times, reverse=True)

    def test_fig7_derived_from_fig6(self, fig6):
        pct = fig7_from_fig6(fig6)
        for name, curve in fig6.items():
            t1 = curve.times_ms[1]
            for p, v in pct[name].items():
                assert v == pytest.approx((1 - curve.times_ms[p] / t1) * 100)

    def test_renders(self, fig6):
        assert "Figure 6" in render_fig6(fig6)
        out7 = render_fig7(fig6)
        assert "Figure 7" in out7
        assert "(paper)" in out7  # paper overlay present
