"""The one-call reproduction report."""

import pytest

from repro.analysis.report import build_report, write_report

SMALL = dict(scale=1 / 4000, min_edges=5000)


@pytest.fixture(scope="module")
def report_text():
    return build_report(**SMALL)


class TestBuildReport:
    def test_contains_all_sections(self, report_text):
        for heading in ("# Reproduction report", "## Table II", "## Figure 6",
                        "## Figure 7", "## Amdahl view"):
            assert heading in report_text

    def test_contains_verdicts(self, report_text):
        assert "Shape verdicts:" in report_text
        assert "PASS" in report_text

    def test_contains_all_graphs(self, report_text):
        for name in ("livejournal", "pokec", "orkut", "webnotredame"):
            assert name in report_text

    def test_records_parameters(self, report_text):
        assert "seed 2023" in report_text


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report(tmp_path / "r.md", **SMALL)
        assert path.exists()
        assert path.read_text().startswith("# Reproduction report")

    def test_cli_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cli.md"
        rc = main(["report", str(out), "--scale", "0.00025", "--min-edges", "5000"])
        assert rc == 0
        assert out.exists()
        assert "wrote reproduction report" in capsys.readouterr().out
