"""Memory model: measured footprints and closed-form projections."""

import numpy as np
import pytest

from repro.analysis.memory import (
    StoreFootprint,
    footprint,
    projected_dense_matrix_bytes,
    projected_edgelist_binary_bytes,
    projected_edgelist_text_bytes,
    projected_packed_csr_bytes,
    projected_raw_csr_bytes,
)
from repro.csr.builder import build_csr_serial, ensure_sorted
from repro.csr.io import edge_list_text_size
from repro.csr.packed import BitPackedCSR
from repro.errors import ValidationError


class TestProjectionMatchesMeasurement:
    """The closed forms must agree with the real structures they model —
    that is what licenses extrapolating them to paper scale."""

    @pytest.fixture
    def built(self, rng):
        n, m = 3000, 40_000
        src, dst = ensure_sorted(rng.integers(0, n, m), rng.integers(0, n, m))
        return src, dst, n, build_csr_serial(src, dst, n)

    def test_packed_csr_exact(self, built):
        src, dst, n, graph = built
        packed = BitPackedCSR.from_csr(graph)
        assert projected_packed_csr_bytes(n, graph.num_edges) == packed.memory_bytes()

    def test_edgelist_text_close(self, built, rng):
        src, dst, n, _ = built
        exact = edge_list_text_size(src, dst)
        projected = projected_edgelist_text_bytes(n, src.shape[0])
        assert projected == pytest.approx(exact, rel=0.05)

    def test_raw_csr(self, built):
        src, dst, n, graph = built
        compact = graph.compact_dtypes()
        # model assumes uniform 4-byte entries; compact uses smaller
        # dtypes when possible, so the model is an upper bound here
        assert projected_raw_csr_bytes(n, graph.num_edges) >= compact.memory_bytes()


class TestProjectionArithmetic:
    def test_binary_edge_list(self):
        assert projected_edgelist_binary_bytes(1000, 10) == 80
        assert projected_edgelist_binary_bytes(2**33, 10) == 160

    def test_dense_matrix(self):
        assert projected_dense_matrix_bytes(8, bits_per_cell=1) == 8
        assert projected_dense_matrix_bytes(8, bits_per_cell=8) == 64
        with pytest.raises(ValidationError):
            projected_dense_matrix_bytes(8, bits_per_cell=7)

    def test_friendster_intro_claim(self):
        """65M nodes at 8 bytes/cell ≈ the paper's 30.02 PB."""
        pb = projected_dense_matrix_bytes(65_608_366, bits_per_cell=64) / 1000**5
        assert pb == pytest.approx(30.02, rel=0.2)

    def test_empty_graph(self):
        assert projected_packed_csr_bytes(0, 0) == 1  # 1 offset field, 1 bit
        assert projected_edgelist_text_bytes(0, 0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            projected_packed_csr_bytes(-1, 0)


class TestFootprint:
    def test_reports_bits_per_edge(self, rng):
        n, m = 100, 600
        src, dst = ensure_sorted(rng.integers(0, n, m), rng.integers(0, n, m))
        g = build_csr_serial(src, dst, n)
        fp = footprint("csr", g)
        assert isinstance(fp, StoreFootprint)
        assert fp.nbytes == g.memory_bytes()
        assert fp.bits_per_edge == pytest.approx(8 * g.memory_bytes() / m)
        assert "csr" in str(fp)
