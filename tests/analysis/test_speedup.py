"""Speed-up metrics and Amdahl fitting."""

import pytest

from repro.analysis.speedup import (
    SpeedupCurve,
    amdahl_fit,
    amdahl_time,
    efficiency,
    speedup_percent,
    speedup_ratio,
)
from repro.errors import ValidationError


class TestMetrics:
    def test_percent_matches_paper_rows(self):
        # LiveJournal row of Table II
        assert speedup_percent(164.76, 57.94) == pytest.approx(64.83, abs=0.05)
        assert speedup_percent(164.76, 17.613) == pytest.approx(89.31, abs=0.05)

    def test_ratio_and_efficiency(self):
        assert speedup_ratio(100, 25) == 4.0
        assert efficiency(100, 25, 4) == 1.0
        assert efficiency(100, 50, 4) == 0.5

    def test_positive_required(self):
        with pytest.raises(ValidationError):
            speedup_percent(0, 1)
        with pytest.raises(ValidationError):
            efficiency(1, 1, 0)


class TestAmdahl:
    def test_time_formula(self):
        assert amdahl_time(100, 0.0, 4) == 25.0
        assert amdahl_time(100, 1.0, 64) == 100.0
        assert amdahl_time(100, 0.5, 2) == 75.0

    def test_fit_recovers_exact_curve(self):
        s = 0.2
        ps = [1, 2, 4, 8, 16, 64]
        ts = [amdahl_time(50, s, p) for p in ps]
        assert amdahl_fit(ps, ts) == pytest.approx(s, abs=1e-9)

    def test_fit_clamped_to_unit_interval(self):
        # superlinear measurements would give s < 0; clamp to 0
        assert amdahl_fit([1, 2], [100, 40]) == 0.0

    def test_fit_requires_baseline(self):
        with pytest.raises(ValidationError, match="p=1"):
            amdahl_fit([2, 4], [50, 25])

    def test_fit_input_validation(self):
        with pytest.raises(ValidationError):
            amdahl_fit([1], [10])
        with pytest.raises(ValidationError):
            amdahl_fit([1, 2], [10, -1])

    def test_paper_curves_imply_serial_fraction(self):
        """The paper's own Table II curves fit Amdahl with a visible
        sequential fraction — the 'inherent sequential steps'."""
        from repro.datasets.registry import PAPER_GRAPHS

        for spec in PAPER_GRAPHS.values():
            ps = sorted(spec.times_ms)
            s = amdahl_fit(ps, [spec.times_ms[p] for p in ps])
            assert 0.0 < s < 0.35, spec.name


class TestSpeedupCurve:
    def test_derived_metrics(self):
        curve = SpeedupCurve("g", {1: 100.0, 4: 40.0, 16: 20.0})
        assert curve.t1 == 100.0
        assert curve.percent() == {4: 60.0, 16: 80.0}
        assert curve.ratios()[16] == 5.0
        assert 0 <= curve.serial_fraction() <= 1

    def test_requires_baseline(self):
        with pytest.raises(ValidationError):
            SpeedupCurve("g", {4: 10.0})

    def test_rejects_invalid_points(self):
        with pytest.raises(ValidationError):
            SpeedupCurve("g", {1: 100.0, 0: 5.0})
        with pytest.raises(ValidationError):
            SpeedupCurve("g", {1: -1.0})
