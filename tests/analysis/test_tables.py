"""Text table/series rendering."""

import pytest

from repro.analysis.tables import format_value, render_series, render_table, sparkline
from repro.errors import ValidationError


class TestFormatValue:
    @pytest.mark.parametrize(
        "value,expect",
        [
            (0.0, "0"),
            (3.14159, "3.14"),
            (0.001234, "0.0012"),
            (123456.7, "123,456.7"),
            (1234567, "1,234,567"),
            (42, "42"),
            (None, "None"),
            (True, "True"),
        ],
    )
    def test_cases(self, value, expect):
        assert format_value(value) == expect


class TestRenderTable:
    def test_alignment_and_structure(self):
        out = render_table(
            ["name", "count"],
            [["alpha", 10], ["b", 2000]],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        # numeric column right-aligned
        assert lines[3].rstrip().endswith("10")
        assert lines[4].rstrip().endswith("2,000" if "2,000" in out else "2000")

    def test_row_width_mismatch(self):
        with pytest.raises(ValidationError, match="row 0"):
            render_table(["a", "b"], [[1]])

    def test_needs_headers(self):
        with pytest.raises(ValidationError):
            render_table([], [])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestRenderSeries:
    def test_union_of_x_values_with_gaps(self):
        out = render_series(
            "S",
            {"a": {1: 1.0, 4: 4.0}, "b": {1: 2.0, 8: 8.0}},
        )
        lines = out.splitlines()
        assert lines[0] == "S"
        assert "8" in lines[1]
        assert "-" in out  # missing points dashed

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            render_series("S", {})


class TestToCsv:
    def test_basic(self):
        from repro.analysis.tables import to_csv

        out = to_csv(["a", "b"], [[1, "x"], [2, 'quo"te,']])
        lines = out.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"
        assert lines[2] == '2,"quo""te,"'

    def test_validation(self):
        from repro.analysis.tables import to_csv

        with pytest.raises(ValidationError):
            to_csv([], [])
        with pytest.raises(ValidationError, match="row 0"):
            to_csv(["a"], [[1, 2]])

    def test_table2_export(self):
        from repro.analysis.experiments import run_table2

        result = run_table2(scale=1 / 4000, min_edges=4000,
                            graphs=("webnotredame",), processors=(1, 4))
        csv = result.to_csv()
        assert csv.splitlines()[0].startswith("graph,nodes,edges")
        assert len(csv.splitlines()) == 3
