"""The on-disk layout: manifest parsing, segment planning, integrity."""

import json

import numpy as np
import pytest

from repro.disk.format import (
    DEFAULT_SEGMENT_BYTES,
    FORMAT_VERSION,
    MANIFEST_NAME,
    Manifest,
    Segment,
    file_crc32,
    plan_field_segments,
    plan_row_segments,
    segment_nbytes,
)
from repro.errors import DiskFormatError, ReproError


def _manifest(**overrides) -> Manifest:
    base = dict(
        version=FORMAT_VERSION,
        num_nodes=3,
        num_edges=4,
        offset_width=3,
        column_width=2,
        gap_encoded=False,
        segment_bytes=DEFAULT_SEGMENT_BYTES,
        offsets=(Segment("offsets-00000.seg", 0, 4, 0, 4, 2, 0),),
        columns=(Segment("columns-00000.seg", 0, 4, 0, 3, 1, 0),),
    )
    base.update(overrides)
    return Manifest(**base)


class TestManifest:
    def test_json_roundtrip(self):
        m = _manifest(gap_encoded=True)
        assert Manifest.from_json(m.to_json()) == m

    def test_save_load_roundtrip(self, tmp_path):
        m = _manifest()
        m.save(tmp_path)
        assert Manifest.load(tmp_path) == m

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DiskFormatError, match=MANIFEST_NAME):
            Manifest.load(tmp_path)

    def test_invalid_json(self):
        with pytest.raises(DiskFormatError, match="not valid JSON"):
            Manifest.from_json("{nope")

    def test_wrong_format_key(self):
        with pytest.raises(DiskFormatError, match="not a repro disk-store"):
            Manifest.from_json(json.dumps({"format": "something-else"}))

    def test_future_version_refused(self):
        doc = json.loads(_manifest().to_json())
        doc["version"] = FORMAT_VERSION + 1
        with pytest.raises(DiskFormatError, match="unsupported format version"):
            Manifest.from_json(json.dumps(doc))

    def test_missing_field_is_clean(self):
        doc = json.loads(_manifest().to_json())
        del doc["num_nodes"]
        with pytest.raises(DiskFormatError, match="malformed manifest"):
            Manifest.from_json(json.dumps(doc))

    def test_malformed_segment_is_clean(self):
        doc = json.loads(_manifest().to_json())
        del doc["segments"]["columns"][0]["crc32"]
        with pytest.raises(DiskFormatError, match="malformed manifest"):
            Manifest.from_json(json.dumps(doc))

    def test_errors_are_repro_errors(self):
        with pytest.raises(ReproError):
            Manifest.from_json("[]")


class TestVerify:
    def _store_dir(self, tmp_path):
        off = b"\x12\x34"
        col = b"\x56"
        (tmp_path / "offsets-00000.seg").write_bytes(off)
        (tmp_path / "columns-00000.seg").write_bytes(col)
        import zlib

        m = _manifest(
            offsets=(Segment("offsets-00000.seg", 0, 4, 0, 4, 2, zlib.crc32(off)),),
            columns=(Segment("columns-00000.seg", 0, 4, 0, 3, 1, zlib.crc32(col)),),
        )
        m.save(tmp_path)
        return m

    def test_verify_clean(self, tmp_path):
        self._store_dir(tmp_path).verify(tmp_path)

    def test_missing_segment_named(self, tmp_path):
        m = self._store_dir(tmp_path)
        (tmp_path / "columns-00000.seg").unlink()
        with pytest.raises(DiskFormatError, match="columns-00000.seg.*missing"):
            m.verify(tmp_path)

    def test_size_mismatch_named(self, tmp_path):
        m = self._store_dir(tmp_path)
        (tmp_path / "columns-00000.seg").write_bytes(b"\x56\x00")
        with pytest.raises(DiskFormatError, match="columns-00000.seg.*2 bytes"):
            m.verify(tmp_path)

    def test_corrupt_payload_named(self, tmp_path):
        m = self._store_dir(tmp_path)
        (tmp_path / "offsets-00000.seg").write_bytes(b"\x12\x35")
        with pytest.raises(DiskFormatError, match="offsets-00000.seg.*checksum"):
            m.verify(tmp_path)

    def test_file_crc32_streams(self, tmp_path):
        import zlib

        payload = bytes(range(256)) * 100
        p = tmp_path / "blob"
        p.write_bytes(payload)
        assert file_crc32(p, chunk_bytes=37) == zlib.crc32(payload)


class TestPlanning:
    def test_field_segments_cover_exactly(self):
        plan = plan_field_segments(1000, 13, 64)
        assert plan[0][0] == 0 and plan[-1][1] == 1000
        for (a0, a1), (b0, b1) in zip(plan, plan[1:]):
            assert a1 == b0
        for lo, hi in plan:
            assert hi > lo
            assert segment_nbytes(hi - lo, 13) <= 64

    def test_field_segments_at_least_one_field(self):
        # a budget smaller than one field still makes progress
        assert plan_field_segments(3, 64, 1) == [(0, 1), (1, 2), (2, 3)]

    def test_row_segments_never_straddle_rows(self, rng):
        deg = rng.integers(0, 50, 200)
        indptr = np.concatenate([[0], np.cumsum(deg)]).astype(np.int64)
        plan = plan_row_segments(indptr, 17, 256)
        assert plan[0][0] == 0 and plan[-1][1] == 200
        for (a0, a1), (b0, b1) in zip(plan, plan[1:]):
            assert a1 == b0
        for r0, r1 in plan:
            assert r1 > r0

    def test_oversized_row_gets_own_segment(self):
        indptr = np.array([0, 1, 5000, 5001], dtype=np.int64)
        plan = plan_row_segments(indptr, 32, 64)
        assert (1, 2) in plan  # the huge row is one (oversized) segment

    def test_empty_graph_plans(self):
        assert plan_row_segments(np.array([0], dtype=np.int64), 8, 64) == []
        assert plan_field_segments(0, 8, 64) == []
