"""Disk format v2: codec segments, perm, and v1 backward compatibility."""

import json

import numpy as np
import pytest

from repro.csr.builder import ensure_sorted
from repro.csr.packed import build_bitpacked_csr
from repro.csr.reorder import degree_order
from repro.disk import (
    DiskStore,
    SUPPORTED_VERSIONS,
    open_disk_store,
    write_disk_store,
)
from repro.errors import DiskFormatError, ValidationError
from repro.reorder import ReorderedStore

V1_SEGMENT_KEYS = ("codec", "enc_width", "starts_width", "starts_nbytes")


@pytest.fixture
def packed(rng):
    n, m = 300, 4000
    src, dst = ensure_sorted(rng.integers(0, n, m), rng.integers(0, n, m))
    return build_bitpacked_csr(src, dst, n, None)


def _downgrade_manifest(directory):
    """Rewrite manifest.json as a faithful format-v1 document."""
    path = directory / "manifest.json"
    doc = json.loads(path.read_text())
    assert doc["version"] == 2
    doc["version"] = 1
    doc.pop("ordering")
    doc.pop("perm")
    for seg in doc["segments"]["offsets"] + doc["segments"]["columns"]:
        for key in V1_SEGMENT_KEYS:
            seg.pop(key)
    path.write_text(json.dumps(doc))


def _assert_same_answers(store, packed, rng):
    batch = rng.integers(0, packed.num_nodes, 150)
    flat, offsets = store.neighbors_batch(batch)
    pflat, poffsets = packed.neighbors_batch(batch)
    assert np.array_equal(offsets, poffsets)
    assert np.array_equal(flat, pflat)


class TestV1Compat:
    def test_v1_manifest_opens_and_answers(self, tmp_path, rng, packed):
        write_disk_store(packed, tmp_path / "store")
        _downgrade_manifest(tmp_path / "store")
        store = open_disk_store(tmp_path / "store")
        assert isinstance(store, DiskStore)
        assert store.manifest.version == 1
        assert store.ordering == "natural"
        assert all(s.codec == "fixed" for s in store.manifest.columns)
        _assert_same_answers(store, packed, rng)
        assert store.to_csr() == packed.to_csr()

    def test_supported_versions(self):
        assert SUPPORTED_VERSIONS == (1, 2)

    def test_future_version_refused(self, tmp_path, rng, packed):
        write_disk_store(packed, tmp_path / "store")
        path = tmp_path / "store" / "manifest.json"
        doc = json.loads(path.read_text())
        doc["version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(DiskFormatError, match="unsupported format version"):
            open_disk_store(tmp_path / "store")


class TestV2Codecs:
    def test_adaptive_store_matches_packed(self, tmp_path, rng, packed):
        store = write_disk_store(
            packed, tmp_path / "store", codecs="auto", segment_bytes=2048
        )
        assert store.manifest.version == 2
        assert store.gap_encoded
        _assert_same_answers(store, packed, rng)
        assert store.to_csr() == packed.to_csr()

    def test_explicit_codec_list(self, tmp_path, rng, packed):
        store = write_disk_store(
            packed, tmp_path / "store",
            codecs=("fixed", "varint", "zeta2"), segment_bytes=2048,
        )
        _assert_same_answers(store, packed, rng)
        seen = {s.codec for s in store.manifest.columns}
        assert seen <= {"fixed", "varint", "zeta2"}

    def test_codec_breakdown_totals(self, tmp_path, packed):
        store = write_disk_store(
            packed, tmp_path / "store", codecs="auto", segment_bytes=2048
        )
        breakdown = store.codec_breakdown()
        assert sum(r["edges"] for r in breakdown.values()) == store.num_edges
        assert sum(r["segments"] for r in breakdown.values()) == len(
            store.manifest.columns
        )

    def test_verify_catches_corruption(self, tmp_path, packed):
        store = write_disk_store(
            packed, tmp_path / "store", codecs="auto", segment_bytes=2048
        )
        victim = tmp_path / "store" / store.manifest.columns[0].filename
        raw = bytearray(victim.read_bytes())
        raw[0] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(DiskFormatError, match="checksum"):
            open_disk_store(tmp_path / "store")


class TestV2Perm:
    def test_reordered_disk_roundtrip(self, tmp_path, rng, packed):
        graph = packed.to_csr()
        perm = degree_order(graph)
        src, dst = graph.edges()
        relabeled = build_bitpacked_csr(
            perm[src], perm[dst], graph.num_nodes, None, sort=True
        )
        write_disk_store(
            relabeled, tmp_path / "store",
            codecs="auto", ordering="degree", perm=perm, segment_bytes=2048,
        )
        store = open_disk_store(tmp_path / "store")
        assert isinstance(store, ReorderedStore)
        assert store.ordering == "degree"
        _assert_same_answers(store, packed, rng)

    def test_perm_must_be_valid(self, tmp_path, packed):
        bad = np.zeros(packed.num_nodes, dtype=np.int64)
        with pytest.raises(ValidationError):
            write_disk_store(packed, tmp_path / "store", perm=bad)
