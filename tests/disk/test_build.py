"""Out-of-core construction: bit-exact with the in-memory pipeline."""

import numpy as np
import pytest

from repro.csr.io import write_edge_list_binary
from repro.csr.packed import build_bitpacked_csr
from repro.disk import DiskStore, build_disk_store, write_disk_store
from repro.errors import DiskFormatError, ValidationError
from repro.parallel import SimulatedMachine


def _edge_file(tmp_path, rng, n=400, m=5000, name="edges.bin"):
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    path = tmp_path / name
    write_edge_list_binary(path, src, dst)
    return path, src, dst, n


class TestBitExactness:
    """The out-of-core build must produce the *same directory* —
    manifest, segment boundaries, per-file CRCs — as packing in memory
    and writing the result, for any chunking."""

    @pytest.mark.parametrize("gap", [False, True], ids=["plain", "gap"])
    @pytest.mark.parametrize("chunk_edges", [64, 777, 5000, 1 << 20])
    def test_manifest_identical_to_in_memory(self, tmp_path, rng, gap,
                                             chunk_edges):
        path, src, dst, n = _edge_file(tmp_path, rng)
        disk = build_disk_store(
            path, tmp_path / "ooc", num_nodes=n, gap_encode=gap,
            chunk_edges=chunk_edges, segment_bytes=512,
        )
        packed = build_bitpacked_csr(src, dst, n, sort=True, gap_encode=gap)
        ref = write_disk_store(packed, tmp_path / "mem", segment_bytes=512)
        assert disk.manifest.offsets == ref.manifest.offsets
        assert disk.manifest.columns == ref.manifest.columns
        assert disk.manifest.offset_width == ref.manifest.offset_width
        assert disk.manifest.column_width == ref.manifest.column_width
        for seg in (*disk.manifest.offsets, *disk.manifest.columns):
            assert (disk.path / seg.filename).read_bytes() == (
                ref.path / seg.filename
            ).read_bytes()

    def test_unsorted_rows_preserved_when_sort_false(self, tmp_path, rng):
        n = 50
        src = np.sort(rng.integers(0, n, 600))  # u-sorted, rows unsorted
        dst = rng.integers(0, n, 600)
        path = tmp_path / "edges.bin"
        write_edge_list_binary(path, src, dst)
        disk = build_disk_store(
            path, tmp_path / "ooc", num_nodes=n, sort=False, chunk_edges=97,
        )
        packed = build_bitpacked_csr(src, dst, n, sort=False)
        g1, g2 = packed.to_csr(), disk.to_csr()
        # sort=False keeps the edge-file order within each row, exactly
        # like the in-memory stable counting-sort build
        assert np.array_equal(g1.indptr, g2.indptr)
        assert np.array_equal(g1.indices, g2.indices)

    def test_num_nodes_inferred_matches_given(self, tmp_path, rng):
        path, src, dst, n = _edge_file(tmp_path, rng)
        true_n = int(max(src.max(), dst.max())) + 1
        inferred = build_disk_store(path, tmp_path / "a", chunk_edges=333)
        given = build_disk_store(
            path, tmp_path / "b", num_nodes=true_n, chunk_edges=333
        )
        assert inferred.num_nodes == given.num_nodes == true_n
        assert inferred.manifest.columns == given.manifest.columns

    def test_simulated_executor_build(self, tmp_path, rng):
        path, src, dst, n = _edge_file(tmp_path, rng, m=2000)
        disk = build_disk_store(
            path, tmp_path / "sim", num_nodes=n,
            executor=SimulatedMachine(8), chunk_edges=256,
        )
        packed = build_bitpacked_csr(src, dst, n, sort=True)
        q = rng.integers(0, n, 200)
        f1, o1 = packed.neighbors_batch(q)
        f2, o2 = disk.neighbors_batch(q)
        assert np.array_equal(f1, f2) and np.array_equal(o1, o2)

    def test_empty_edge_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        write_edge_list_binary(path, np.zeros(0, np.int64), np.zeros(0, np.int64))
        disk = build_disk_store(path, tmp_path / "out", num_nodes=9)
        assert disk.num_nodes == 9 and disk.num_edges == 0
        assert disk.degrees().tolist() == [0] * 9


class TestBoundedMemory:
    def test_peak_traced_allocation_bounded(self, tmp_path, rng):
        """Building a graph ~10x the chunk size keeps the builder's
        traced peak near the chunk buffers, not near the edge count.

        (tracemalloc does not see mmap pages — which is the point: the
        bulk payload lives in the temporary memmap, not the heap.)
        """
        import tracemalloc

        chunk = 2_000
        seg = 4096
        m = 40_000  # 20x the chunk
        path, _, _, n = _edge_file(tmp_path, rng, n=500, m=m)
        tracemalloc.start()
        try:
            build_disk_store(
                path, tmp_path / "big", num_nodes=n,
                chunk_edges=chunk, segment_bytes=seg,
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # chunk buffers (a few int64 arrays of `chunk`) + O(n) arrays +
        # the unpacked-segment sort buffers + one bounded pack slice;
        # nothing scales with m
        budget = 64 * chunk + 64 * n + 40 * seg + (2 << 20)
        assert peak < budget, f"peak {peak} exceeds bound {budget}"

    def test_no_temporaries_left_behind(self, tmp_path, rng):
        path, _, _, n = _edge_file(tmp_path, rng)
        disk = build_disk_store(path, tmp_path / "out", num_nodes=n)
        names = {p.name for p in disk.path.iterdir()}
        assert "columns.tmp" not in names
        assert all(
            name == "manifest.json" or name.endswith(".seg") for name in names
        )


class TestDirectoryHandling:
    def test_refuses_foreign_directory(self, tmp_path, rng):
        path, _, _, n = _edge_file(tmp_path, rng)
        target = tmp_path / "precious"
        target.mkdir()
        (target / "thesis.tex").write_text("do not clobber")
        with pytest.raises(DiskFormatError, match="refusing to overwrite"):
            build_disk_store(path, target, num_nodes=n)
        assert (target / "thesis.tex").read_text() == "do not clobber"

    def test_refuses_file_path(self, tmp_path, rng):
        path, _, _, n = _edge_file(tmp_path, rng)
        target = tmp_path / "afile"
        target.write_text("x")
        with pytest.raises(DiskFormatError, match="not a directory"):
            build_disk_store(path, target, num_nodes=n)

    def test_rebuild_over_existing_store(self, tmp_path, rng):
        path, src, dst, n = _edge_file(tmp_path, rng)
        target = tmp_path / "store"
        build_disk_store(path, target, num_nodes=n, segment_bytes=128)
        # rebuild with different parameters: old segments fully replaced
        disk = build_disk_store(path, target, num_nodes=n, segment_bytes=1 << 20)
        listed = {p.name for p in target.iterdir()}
        manifest_files = {s.filename for s in
                          (*disk.manifest.offsets, *disk.manifest.columns)}
        assert listed == manifest_files | {"manifest.json"}
        DiskStore.open(target)  # verifies CRCs

    def test_empty_target_reused(self, tmp_path, rng):
        path, _, _, n = _edge_file(tmp_path, rng)
        target = tmp_path / "fresh"
        target.mkdir()
        build_disk_store(path, target, num_nodes=n)
        DiskStore.open(target)


class TestInputValidation:
    def test_truncated_edge_file(self, tmp_path, rng):
        path, _, _, n = _edge_file(tmp_path, rng)
        path.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(ValidationError, match="truncated"):
            build_disk_store(path, tmp_path / "out", num_nodes=n)

    def test_node_id_beyond_num_nodes(self, tmp_path, rng):
        path, src, dst, _ = _edge_file(tmp_path, rng)
        too_small = int(max(src.max(), dst.max()))  # off by one
        with pytest.raises(ValidationError):
            build_disk_store(path, tmp_path / "out", num_nodes=too_small)

    def test_bad_chunk_edges(self, tmp_path, rng):
        path, _, _, n = _edge_file(tmp_path, rng)
        with pytest.raises(ValidationError):
            build_disk_store(path, tmp_path / "out", num_nodes=n, chunk_edges=0)

    def test_bad_segment_bytes(self, tmp_path, rng):
        path, _, _, n = _edge_file(tmp_path, rng)
        with pytest.raises(ValidationError):
            build_disk_store(path, tmp_path / "out", num_nodes=n,
                             segment_bytes=0)
