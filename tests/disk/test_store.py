"""DiskStore correctness: bit-exact parity with the in-memory packed CSR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csr.packed import build_bitpacked_csr
from repro.disk import DiskStore, write_disk_store
from repro.errors import DiskFormatError, QueryError, ValidationError
from repro.parallel import CostModel, SerialExecutor, SimulatedMachine
from repro.query import RowCache, batch_edge_existence, batch_neighbors, capabilities
from repro.query.edges import single_edge_exists
from repro.shard import build_sharded_store
from repro.stores import open_store


def _random_graph(seed, n, m):
    rng = np.random.default_rng(seed)
    src = np.sort(rng.integers(0, n, m))
    dst = rng.integers(0, n, m)
    return src, dst


@pytest.fixture(params=[False, True], ids=["plain", "gap"])
def pair(request, tmp_path):
    """(BitPackedCSR, DiskStore) of the same graph, tiny segments."""
    src, dst = _random_graph(7, 300, 2500)
    packed = build_bitpacked_csr(src, dst, 300, sort=True,
                                 gap_encode=request.param)
    disk = write_disk_store(packed, tmp_path / "store", segment_bytes=256)
    return packed, disk


class TestParity:
    def test_batch_bit_exact(self, pair, rng):
        packed, disk = pair
        q = rng.integers(0, packed.num_nodes, 500)
        f1, o1 = packed.neighbors_batch(q)
        f2, o2 = disk.neighbors_batch(q)
        assert f2.dtype == f1.dtype
        assert np.array_equal(f1, f2)
        assert np.array_equal(o1, o2)

    def test_scalar_surface(self, pair):
        packed, disk = pair
        for u in (0, 1, 151, packed.num_nodes - 1):
            assert np.array_equal(packed.neighbors(u), disk.neighbors(u))
            assert packed.degree(u) == disk.degree(u)
            assert packed.offset(u) == disk.offset(u)
        assert np.array_equal(packed.degrees(), disk.degrees())

    def test_has_edge(self, pair, rng):
        packed, disk = pair
        for _ in range(50):
            u = int(rng.integers(0, packed.num_nodes))
            v = int(rng.integers(0, packed.num_nodes))
            assert packed.has_edge(u, v) == disk.has_edge(u, v)

    def test_to_csr_roundtrip(self, pair):
        packed, disk = pair
        g1, g2 = packed.to_csr(), disk.to_csr()
        assert np.array_equal(g1.indptr, g2.indptr)
        assert np.array_equal(g1.indices, g2.indices)

    def test_query_kernels_match(self, pair, rng):
        packed, disk = pair
        q = rng.integers(0, packed.num_nodes, 200)
        for ex in (SerialExecutor(), SimulatedMachine(4)):
            r1 = batch_neighbors(packed, q, ex)
            r2 = batch_neighbors(disk, q, ex)
            for a, b in zip(r1, r2):
                assert np.array_equal(a, b)
        pairs = np.stack([q[:100], rng.integers(0, packed.num_nodes, 100)], axis=1)
        for method in ("scan", "bisect"):
            assert np.array_equal(
                batch_edge_existence(packed, pairs, SimulatedMachine(3), method=method),
                batch_edge_existence(disk, pairs, SimulatedMachine(3), method=method),
            )
        u, v = int(q[0]), int(disk.neighbors(int(q[0]))[0]) if disk.degree(int(q[0])) else 0
        assert single_edge_exists(packed, u, v, SimulatedMachine(2)) == \
            single_edge_exists(disk, u, v, SimulatedMachine(2))

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        n=st.integers(1, 80),
        m=st.integers(0, 300),
        gap=st.booleans(),
        segment_bytes=st.sampled_from([16, 64, 1024]),
    )
    def test_property_bit_exact(self, tmp_path_factory, seed, n, m, gap,
                                segment_bytes):
        src, dst = _random_graph(seed, n, m)
        packed = build_bitpacked_csr(src, dst, n, sort=True, gap_encode=gap)
        out = tmp_path_factory.mktemp("ds")
        disk = write_disk_store(packed, out, segment_bytes=segment_bytes)
        rng = np.random.default_rng(seed ^ 0xABC)
        q = rng.integers(0, n, 64)
        f1, o1 = packed.neighbors_batch(q)
        f2, o2 = disk.neighbors_batch(q)
        assert np.array_equal(f1, f2) and np.array_equal(o1, o2)
        assert np.array_equal(packed.degrees(), disk.degrees())


class TestCostModel:
    def test_page_touches_metered_and_drained(self, pair):
        _, disk = pair
        disk.neighbors_batch(np.arange(50))
        touched = disk.take_page_touches()
        assert touched > 0
        assert disk.take_page_touches() == 0

    def test_page_touches_bounded_by_distinct_pages(self, pair):
        # querying one row twice cannot touch more pages than the store
        # maps: the counter is a union of windows, not a sum
        _, disk = pair
        disk.take_page_touches()
        disk.neighbors_batch(np.array([5, 5, 5, 5]))
        once = disk.take_page_touches()
        disk.neighbors_batch(np.array([5]))
        assert disk.take_page_touches() == once

    def test_capability_flag(self, pair):
        packed, disk = pair
        assert capabilities(disk).counts_page_touches
        assert not capabilities(packed).counts_page_touches

    def test_simulated_cost_parity_with_zero_page_weight(self, pair, rng):
        """With page_touch_ns=0 the simulated clock is bit-identical to
        the in-memory packed store: every other charge matches."""
        packed, disk = pair
        q = rng.integers(0, packed.num_nodes, 300)
        zero_pages = CostModel(page_touch_ns=0.0)
        m1 = SimulatedMachine(4, cost_model=zero_pages)
        m2 = SimulatedMachine(4, cost_model=zero_pages)
        batch_neighbors(packed, q, m1)
        batch_neighbors(disk, q, m2)
        assert m1.elapsed_ns() == m2.elapsed_ns()

    def test_page_weight_strictly_additive(self, pair, rng):
        packed, disk = pair
        q = rng.integers(0, packed.num_nodes, 300)
        m_disk = SimulatedMachine(4)
        m_mem = SimulatedMachine(4)
        batch_neighbors(disk, q, m_disk)
        batch_neighbors(packed, q, m_mem)
        assert m_disk.elapsed_ns() > m_mem.elapsed_ns()


class TestComposition:
    def test_inside_sharded_store(self, tmp_path, rng):
        src, dst = _random_graph(3, 200, 1500)
        ref = build_bitpacked_csr(src, dst, 200, sort=True)
        store = build_sharded_store(
            src, dst, 200, shards=3, inner="disk", sort=True,
            path=tmp_path / "sharded", segment_bytes=128,
        )
        assert all(isinstance(s, DiskStore) for s in store.shards)
        # per-shard sub-directories, not one clobbered path
        assert sorted(p.name for p in (tmp_path / "sharded").iterdir()) == [
            "shard-0", "shard-1", "shard-2",
        ]
        q = rng.integers(0, 200, 300)
        f1, o1 = ref.neighbors_batch(q)
        f2, o2 = store.neighbors_batch(q)
        assert np.array_equal(f1, f2) and np.array_equal(o1, o2)
        store.neighbors_batch(q)
        assert store.take_page_touches() >= 0
        assert capabilities(store).counts_page_touches

    def test_sharded_over_memory_has_no_page_surface(self, rng):
        src, dst = _random_graph(3, 50, 200)
        store = build_sharded_store(src, dst, 50, shards=2, sort=True)
        assert not capabilities(store).counts_page_touches

    def test_under_row_cache(self, pair, rng):
        packed, disk = pair
        cached = RowCache(disk, capacity=10_000)
        assert capabilities(cached).counts_page_touches
        q = rng.integers(0, packed.num_nodes, 100)
        f1, o1 = packed.neighbors_batch(q)
        f2, o2 = cached.neighbors_batch(q)
        assert np.array_equal(f1, f2) and np.array_equal(o1, o2)
        cached.take_page_touches()
        cached.neighbors_batch(q)  # all hits: no new pages faulted
        assert cached.take_page_touches() == 0
        assert not capabilities(RowCache(packed, capacity=8)).counts_page_touches

    def test_registry_builds_in_temp_dir(self, rng):
        src, dst = _random_graph(11, 80, 400)
        store = open_store("disk", src, dst, 80)
        path = store.path
        assert path.exists()
        q = rng.integers(0, 80, 50)
        ref = open_store("packed", src, dst, 80)
        f1, o1 = ref.neighbors_batch(q)
        f2, o2 = store.neighbors_batch(q)
        assert np.array_equal(f1, f2) and np.array_equal(o1, o2)

    def test_registry_honors_path(self, tmp_path, rng):
        src, dst = _random_graph(11, 80, 400)
        store = open_store("disk", src, dst, 80, path=tmp_path / "here")
        assert store.path == tmp_path / "here"
        assert (tmp_path / "here" / "manifest.json").is_file()


class TestOpenAndErrors:
    def test_reopen_is_bit_exact(self, pair, tmp_path):
        packed, disk = pair
        reopened = DiskStore.open(disk.path)
        q = np.arange(packed.num_nodes)
        f1, o1 = packed.neighbors_batch(q)
        f2, o2 = reopened.neighbors_batch(q)
        assert np.array_equal(f1, f2) and np.array_equal(o1, o2)

    def test_flipped_checksum_refused_on_open(self, pair):
        _, disk = pair
        seg = disk.manifest.columns[0]
        path = disk.path / seg.filename
        payload = bytearray(path.read_bytes())
        payload[0] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(DiskFormatError, match="checksum"):
            DiskStore.open(disk.path)
        # verify=False trusts the directory and still opens
        assert DiskStore.open(disk.path, verify=False).num_nodes == disk.num_nodes

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(DiskFormatError, match="manifest"):
            DiskStore.open(tmp_path / "nope")

    def test_query_errors(self, pair):
        _, disk = pair
        with pytest.raises(QueryError):
            disk.neighbors(disk.num_nodes)
        with pytest.raises(QueryError):
            disk.neighbors_batch(np.array([-1]))
        with pytest.raises(QueryError):
            disk.neighbors_batch(np.array([[0, 1]]))

    def test_weighted_refused(self, tmp_path):
        src = np.array([0, 0, 1])
        dst = np.array([1, 2, 2])
        packed = build_bitpacked_csr(src, dst, 3, weights=np.array([1, 2, 3]))
        with pytest.raises(ValidationError, match="weighted"):
            write_disk_store(packed, tmp_path / "w")


class TestAccountingAndLifecycle:
    def test_memory_is_lazy(self, pair):
        packed, disk = pair
        cold = DiskStore.open(disk.path, verify=False)
        assert cold.mapped_segments() == 0
        assert 0 < cold.memory_bytes() < cold.disk_bytes()
        cold.neighbors(5)
        assert cold.mapped_segments() > 0
        warm = cold.memory_bytes()
        assert warm > 0
        cold.close()
        assert cold.mapped_segments() == 0
        assert np.array_equal(cold.neighbors(5), packed.neighbors(5))  # remaps

    def test_disk_bytes_and_bits_per_edge(self, pair):
        packed, disk = pair
        assert disk.disk_bytes() == sum(
            (disk.path / s.filename).stat().st_size
            for s in (*disk.manifest.offsets, *disk.manifest.columns)
        )
        assert disk.bits_per_edge() > 0

    def test_context_manager(self, pair):
        _, disk = pair
        with DiskStore.open(disk.path, verify=False) as store:
            store.neighbors(1)
            assert store.mapped_segments() > 0
        assert store.mapped_segments() == 0

    def test_repr_mentions_layout(self, pair):
        _, disk = pair
        text = repr(disk)
        assert "DiskStore" in text and "segments=" in text


class TestEdgeCases:
    def test_empty_graph(self, tmp_path):
        packed = build_bitpacked_csr(
            np.zeros(0, np.int64), np.zeros(0, np.int64), 0
        )
        disk = write_disk_store(packed, tmp_path / "empty")
        assert disk.num_nodes == 0 and disk.num_edges == 0
        flat, offs = disk.neighbors_batch(np.zeros(0, np.int64))
        assert flat.size == 0 and offs.tolist() == [0]
        assert disk.degrees().size == 0
        assert DiskStore.open(disk.path).num_edges == 0

    def test_all_empty_rows(self, tmp_path):
        packed = build_bitpacked_csr(
            np.zeros(0, np.int64), np.zeros(0, np.int64), 17
        )
        disk = write_disk_store(packed, tmp_path / "hollow")
        assert disk.manifest.columns == ()  # no zero-byte segment files
        flat, offs = disk.neighbors_batch(np.arange(17))
        assert flat.size == 0
        assert offs.tolist() == [0] * 18
        assert disk.degree(16) == 0

    def test_single_edge(self, tmp_path):
        packed = build_bitpacked_csr(np.array([2]), np.array([0]), 3)
        disk = write_disk_store(packed, tmp_path / "one")
        assert disk.neighbors(2).tolist() == [0]
        assert disk.has_edge(2, 0) and not disk.has_edge(0, 2)
