"""Property tests: routed serving is bit-exact, exactly-once, and fails fast.

The cluster router must be observationally identical to a monolithic
:class:`GraphQueryServer` for completed requests: for random request
interleavings over every shard store kind × worker/replica layout,
every routed reply equals a direct per-request :class:`QueryEngine`
call on an unsharded store of the same kind.  On top of parity, the
router's three tail mechanisms get their own guarantees: hedging never
double-resolves a slot (losing duplicates are dropped and counted),
a replica failure mid-flight is retried on a sibling, and when every
replica of a shard is down the affected tickets fail with a one-line
:class:`ClusterError` instead of hanging.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.csr.builder import ensure_sorted
from repro.errors import ClusterError, ValidationError
from repro.query import QueryEngine
from repro.serve import (
    DONE,
    FAILED,
    REJECTED,
    SHED,
    EdgeRequest,
    ManualClock,
    NeighborsRequest,
    ServerConfig,
    WriteRequest,
    open_server,
)
from repro.stores import open_store

#: Store kinds each shard replica can serve (sharded via open_store).
SHARD_KINDS = ["csr", "packed", "gap", "adjlist", "edgelist"]

#: (workers, replicas) layouts: monolithic-on-router, sharded,
#: replicated single shard, and sharded+replicated.
LAYOUTS = [(1, 1), (2, 1), (2, 2), (4, 2)]


@st.composite
def edge_lists(draw):
    n = draw(st.integers(1, 20))
    m = draw(st.integers(0, 60))
    src = np.asarray(
        draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)), dtype=np.int64
    )
    dst = np.asarray(
        draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)), dtype=np.int64
    )
    src, dst = ensure_sorted(src, dst)
    return src, dst, n


@st.composite
def request_streams(draw, n):
    """A random interleaving of neighbour and edge requests with gaps."""
    k = draw(st.integers(0, 40))
    stream = []
    t = 0.0
    for _ in range(k):
        t += draw(st.integers(0, 300))
        if draw(st.booleans()):
            stream.append((t, NeighborsRequest(node=draw(st.integers(0, n - 1)))))
        else:
            stream.append(
                (t, EdgeRequest(u=draw(st.integers(0, n - 1)),
                                v=draw(st.integers(0, n - 1))))
            )
    return stream


def _assert_reply_correct(slot, engine):
    req = slot.request
    if isinstance(req, NeighborsRequest):
        want = engine.neighbors([req.node])[0]
        got = slot.result()
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)
    else:
        assert slot.result() == bool(engine.has_edges([(req.u, req.v)])[0])


def _cluster(src, dst, n, *, workers, replicas, kind="packed", **overrides):
    clock = ManualClock()
    config = ServerConfig(
        store_kind=kind,
        edges=(src, dst, n),
        workers=workers,
        replicas=replicas,
        cluster=True,
        **overrides,
    )
    return open_server(config, clock=clock), clock


def _dense_edges(seed=7, n=40, m=300):
    rng = np.random.default_rng(seed)
    src = np.sort(rng.integers(0, n, m))
    dst = rng.integers(0, n, m)
    src, dst = ensure_sorted(src, dst)
    return src, dst, n


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(), edges=edge_lists())
@pytest.mark.parametrize("workers,replicas", LAYOUTS,
                         ids=[f"{w}w-{r}r" for w, r in LAYOUTS])
def test_routed_replies_bit_exact(workers, replicas, data, edges):
    """Scatter-gather across any layout equals the monolithic engine."""
    src, dst, n = edges
    kind = data.draw(st.sampled_from(SHARD_KINDS))
    engine = QueryEngine(open_store(kind, src, dst, n))
    router, clock = _cluster(
        src, dst, n,
        workers=workers, replicas=replicas, kind=kind,
        max_batch_size=data.draw(st.integers(1, 8)),
        max_wait_ns=float(data.draw(st.integers(0, 500))),
        queue_capacity=1 << 16,
    )
    slots = []
    for arrival, req in data.draw(request_streams(n)):
        clock.advance_to(arrival)
        router.pump(clock())
        slots.append(router.submit(req))
    router.drain()
    for slot in slots:
        assert slot.status == DONE
        _assert_reply_correct(slot, engine)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(), edges=edge_lists())
@pytest.mark.parametrize("policy", ["reject", "shed-oldest", "block"])
def test_routed_tickets_resolved_exactly_once(policy, data, edges):
    """Every routed ticket ends in exactly one terminal state, with the
    router's snapshot and cluster counters agreeing with the slots."""
    src, dst, n = edges
    engine = QueryEngine(open_store("packed", src, dst, n))
    router, clock = _cluster(
        src, dst, n,
        workers=2, replicas=1,
        max_batch_size=data.draw(st.integers(1, 6)),
        max_wait_ns=float(data.draw(st.integers(0, 1000))),
        queue_capacity=data.draw(st.integers(1, 6)),
        policy=policy,
    )
    slots = []
    for arrival, req in data.draw(request_streams(n)):
        clock.advance_to(arrival)
        slots.append(router.submit(req))
    router.drain()

    # ReplySlot._resolve raises on double resolution, so reaching a
    # terminal state here proves exactly-once delivery
    assert all(s.ready for s in slots)
    statuses = [s.status for s in slots]
    snap = router.snapshot()
    stats = router.cluster_stats()
    assert statuses.count(DONE) == snap.completed
    assert statuses.count(REJECTED) == snap.rejected
    assert statuses.count(SHED) == snap.shed
    assert statuses.count(FAILED) == stats.failed_requests == 0
    assert len(slots) == snap.accepted + snap.rejected
    assert sum(stats.per_shard.values()) == stats.subs_dispatched
    for slot in slots:
        if slot.status == DONE:
            _assert_reply_correct(slot, engine)


class TestFailureInjection:
    """Replica failure: retries when a sibling is up, fast one-line
    failure when the whole replica set is down — never a hung slot."""

    def test_retry_on_replica_failure_mid_flight(self):
        src, dst, n = _dense_edges()
        engine = QueryEngine(open_store("packed", src, dst, n))
        router, clock = _cluster(src, dst, n, workers=2, replicas=2,
                                 max_batch_size=16, max_wait_ns=100.0)
        rng = np.random.default_rng(11)
        slots = [router.submit(NeighborsRequest(node=int(u)))
                 for u in rng.integers(0, n, 48)]
        # completions are in flight; kill the busiest worker just after
        # "now", so its landed-in-the-future replies are lost
        victim = max(router.workers, key=lambda w: w.busy_until)
        victim.fail(clock() + 1.0)
        router.drain()
        assert router.retries >= 1
        for slot in slots:
            assert slot.status == DONE
            _assert_reply_correct(slot, engine)

    def test_all_replicas_down_fails_with_one_line_cluster_error(self):
        src, dst, n = _dense_edges()
        router, clock = _cluster(src, dst, n, workers=2, replicas=2,
                                 max_batch_size=8, max_wait_ns=50.0)
        for worker in router.workers:
            worker.fail()
        slots = [router.submit(NeighborsRequest(node=i)) for i in range(20)]
        router.drain()  # must terminate: no hang on a dead replica set
        stats = router.cluster_stats()
        assert stats.failed_requests == len(slots)
        for slot in slots:
            assert slot.status == FAILED
            with pytest.raises(ClusterError, match=r"shard 0: all 2 replicas down"):
                slot.result()
            assert "\n" not in str(slot.error)
            assert "attempts" in str(slot.error)

    def test_failure_after_dispatch_names_last_worker(self):
        src, dst, n = _dense_edges()
        router, clock = _cluster(src, dst, n, workers=2, replicas=2,
                                 max_batch_size=4, max_wait_ns=0.0)
        slot = router.submit(NeighborsRequest(node=1))
        # the sub was dispatched on submit (zero-wait window); now the
        # whole replica set dies before the completion lands
        for worker in router.workers:
            worker.fail(clock() + 1.0)
        router.drain()
        assert slot.status == FAILED
        assert "last worker" in str(slot.error)
        assert router.retries >= 1

    def test_recovered_worker_rejoins_selection(self):
        src, dst, n = _dense_edges()
        router, clock = _cluster(src, dst, n, workers=2, replicas=2,
                                 max_batch_size=4, max_wait_ns=0.0)
        router.workers[0].fail()
        a = router.submit(NeighborsRequest(node=0))
        router.drain()
        router.workers[0].recover()
        b = router.submit(NeighborsRequest(node=0))
        router.drain()
        assert a.status == DONE and b.status == DONE
        assert router.cluster_stats().per_worker[0].alive


class TestHedging:
    """Straggler hedging: duplicates dropped and counted, replies
    exactly-once, results still bit-exact."""

    def _hedged_router(self, src, dst, n):
        router, clock = _cluster(
            src, dst, n,
            workers=2, replicas=2,
            max_batch_size=4, max_wait_ns=0.0,
            hedge_percentile=50.0, hedge_min_samples=1,
        )
        return router, clock

    def test_hedged_duplicates_dropped_and_counted(self):
        src, dst, n = _dense_edges()
        engine = QueryEngine(open_store("packed", src, dst, n))
        router, clock = self._hedged_router(src, dst, n)
        # warm the service-time sample window with both replicas fast,
        # so the hedge deadline reflects healthy latencies...
        slots = []
        rng = np.random.default_rng(3)
        for u in rng.integers(0, n, 10):
            clock.advance(50.0)
            router.pump(clock())
            slots.append(router.submit(NeighborsRequest(node=int(u))))
        router.drain()
        # ...then inject the straggler: subs landing on it would finish
        # far past the deadline, so they get hedged to the fast sibling
        router.workers[1].slow_factor = 100.0
        for u in rng.integers(0, n, 40):
            clock.advance(50.0)
            router.pump(clock())
            slots.append(router.submit(NeighborsRequest(node=int(u))))
        router.drain()
        assert router.hedges_launched >= 1
        # no failures here, so every hedge produces exactly one losing
        # duplicate completion — dropped, never double-resolved
        assert router.duplicate_completions == router.hedges_launched
        assert sum(w.hedge_wins for w in router.workers) >= 1
        snap = router.snapshot()
        assert snap.completed == len(slots)
        for slot in slots:
            assert slot.status == DONE
            _assert_reply_correct(slot, engine)

    def test_hedging_waits_for_warmup_samples(self):
        src, dst, n = _dense_edges()
        router, clock = _cluster(
            src, dst, n,
            workers=2, replicas=2,
            max_batch_size=4, max_wait_ns=0.0,
            hedge_percentile=50.0, hedge_min_samples=10_000,
        )
        router.workers[1].slow_factor = 100.0
        for u in range(30):
            clock.advance(50.0)
            router.submit(NeighborsRequest(node=u % n))
        router.drain()
        assert router.hedges_launched == 0


class TestRouterSurface:
    """Non-property behaviours of the router object itself."""

    def test_cluster_serving_is_read_only(self):
        src, dst, n = _dense_edges()
        router, _ = _cluster(src, dst, n, workers=2, replicas=1)
        with pytest.raises(ValidationError):
            router.submit(WriteRequest(op="insert", u=0, v=1))

    def test_double_submit_rejected(self):
        src, dst, n = _dense_edges()
        router, _ = _cluster(src, dst, n, workers=2, replicas=1)
        req = NeighborsRequest(node=0)
        router.submit(req)
        with pytest.raises(ValidationError):
            router.submit(req)

    def test_tenant_quota_rejects_excess_inflight(self):
        src, dst, n = _dense_edges()
        router, _ = _cluster(src, dst, n, workers=2, replicas=1,
                             max_batch_size=64, max_wait_ns=1e12,
                             tenant_quotas={"free": 1})
        a = router.submit(NeighborsRequest(node=1, tenant="free"))
        b = router.submit(NeighborsRequest(node=2, tenant="free"))
        c = router.submit(NeighborsRequest(node=3, tenant="paid"))
        assert b.status == REJECTED
        router.drain()
        assert a.status == DONE and c.status == DONE
        stats = router.cluster_stats()
        assert stats.quota_rejected == 1
        assert stats.per_tenant == {"free": 1, "paid": 1}

    def test_next_wakeup_tracks_window_then_events(self):
        src, dst, n = _dense_edges()
        router, clock = _cluster(src, dst, n, workers=2, replicas=1,
                                 max_batch_size=64, max_wait_ns=500.0)
        assert router.next_wakeup_ns() is None
        router.submit(NeighborsRequest(node=0))
        assert router.next_wakeup_ns() == 500.0  # oldest request's window
        clock.advance_to(500.0)
        router.pump(clock())
        wake = router.next_wakeup_ns()
        assert wake is not None and wake > 500.0  # in-flight completion
        router.drain()
        assert router.next_wakeup_ns() is None

    def test_per_worker_stats_cover_all_workers(self):
        src, dst, n = _dense_edges()
        router, clock = _cluster(src, dst, n, workers=4, replicas=2,
                                 max_batch_size=8, max_wait_ns=100.0)
        for u in range(60):
            clock.advance(20.0)
            router.pump(clock())
            router.submit(NeighborsRequest(node=u % n))
        router.drain()
        stats = router.cluster_stats()
        assert stats.shards == 2 and stats.replicas == 2
        assert len(stats.per_worker) == 4
        assert sum(w.requests_served for w in stats.per_worker) >= 60
        assert sum(stats.per_shard.values()) == stats.subs_dispatched
