"""Packed Memory Array: invariants under arbitrary operation sequences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.pcsr.pma import PackedMemoryArray


class TestBasics:
    def test_insert_contains_delete(self):
        pma = PackedMemoryArray()
        assert pma.insert(42)
        assert 42 in pma
        assert not pma.insert(42)  # set semantics
        assert len(pma) == 1
        assert pma.delete(42)
        assert 42 not in pma
        assert not pma.delete(42)
        assert len(pma) == 0

    def test_sorted_iteration(self, rng):
        pma = PackedMemoryArray()
        keys = rng.choice(10_000, size=500, replace=False)
        for k in keys.tolist():
            pma.insert(k)
        assert pma.to_array().tolist() == sorted(keys.tolist())
        assert list(pma) == sorted(keys.tolist())

    def test_growth_and_shrink(self):
        pma = PackedMemoryArray()
        for k in range(2000):
            pma.insert(k)
        grown = pma.capacity
        assert grown >= 2000
        for k in range(2000):
            pma.delete(k)
        assert pma.capacity < grown
        pma.check_invariants()

    def test_key_bounds(self):
        pma = PackedMemoryArray()
        with pytest.raises(ValidationError):
            pma.insert(-1)
        with pytest.raises(ValidationError):
            pma.insert(2**64 - 1)  # reserved marker
        assert pma.insert(2**64 - 2)  # largest legal key
        assert 2**64 - 2 in pma

    def test_capacity_validation(self):
        with pytest.raises(ValidationError):
            PackedMemoryArray(0)


class TestRangeScan:
    def test_matches_reference(self, rng):
        pma = PackedMemoryArray()
        keys = set(rng.integers(0, 1000, 400).tolist())
        for k in keys:
            pma.insert(k)
        for lo, hi in [(0, 1000), (100, 101), (250, 750), (999, 2000), (5, 5)]:
            want = sorted(k for k in keys if lo <= k < hi)
            assert pma.range_scan(lo, hi).tolist() == want, (lo, hi)

    def test_empty_range(self):
        pma = PackedMemoryArray()
        pma.insert(10)
        assert pma.range_scan(11, 20).shape == (0,)


class TestAdversarialPatterns:
    def test_ascending_then_descending(self):
        pma = PackedMemoryArray()
        for k in range(1000):
            pma.insert(k)
        pma.check_invariants()
        for k in reversed(range(1000)):
            assert pma.delete(k)
        assert len(pma) == 0

    def test_all_inserts_at_front(self):
        """Descending inserts hammer one leaf — the rebalance stress."""
        pma = PackedMemoryArray()
        for k in reversed(range(2000)):
            pma.insert(k)
            if k % 500 == 0:
                pma.check_invariants()
        assert pma.to_array().tolist() == list(range(2000))

    def test_clustered_keys(self, rng):
        """Keys bunched in a narrow band (like one hub node's edges)."""
        pma = PackedMemoryArray()
        base = 1 << 40
        for k in rng.permutation(3000).tolist():
            pma.insert(base + k)
        pma.check_invariants()
        assert len(pma) == 3000

    def test_delete_reopens_capacity(self):
        pma = PackedMemoryArray()
        for k in range(512):
            pma.insert(k)
        for k in range(0, 512, 2):
            pma.delete(k)
        for k in range(10_000, 10_256):
            pma.insert(k)
        pma.check_invariants()
        assert len(pma) == 512

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 60)),
            max_size=250,
        )
    )
    def test_property_matches_set(self, ops):
        pma = PackedMemoryArray()
        ref: set[int] = set()
        for is_insert, key in ops:
            if is_insert:
                assert pma.insert(key) == (key not in ref)
                ref.add(key)
            else:
                assert pma.delete(key) == (key in ref)
                ref.discard(key)
        pma.check_invariants()
        assert pma.to_array().tolist() == sorted(ref)

    def test_density_stays_bounded(self, rng):
        pma = PackedMemoryArray()
        for k in rng.permutation(5000).tolist():
            pma.insert(k)
        assert 0.25 <= pma.density() <= 0.92

    def test_memory_accounting(self):
        pma = PackedMemoryArray()
        pma.insert(1)
        assert pma.memory_bytes() == pma.capacity * 9  # uint64 + bool
