"""PCSRGraph: dynamic updates vs static CSR snapshots."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csr.builder import build_csr_serial, ensure_sorted
from repro.errors import QueryError, ValidationError
from repro.parallel import SimulatedMachine
from repro.pcsr import PCSRGraph
from repro.query import GraphStore, QueryEngine


@pytest.fixture
def dedup_edges(sorted_edges):
    src, dst, n = sorted_edges
    keys = (src.astype(np.uint64) << np.uint64(32)) | dst.astype(np.uint64)
    _, first = np.unique(keys, return_index=True)
    first.sort()
    return src[first], dst[first], n


class TestConstruction:
    def test_from_edges_matches_csr(self, dedup_edges):
        src, dst, n = dedup_edges
        pcsr = PCSRGraph.from_edges(src, dst, n)
        ref = build_csr_serial(src, dst, n)
        assert pcsr.num_edges == ref.num_edges
        for u in range(0, n, 11):
            assert pcsr.neighbors(u).tolist() == ref.neighbors(u).tolist()
        assert np.array_equal(pcsr.degrees(), ref.degrees())

    def test_from_csr_roundtrip(self, dedup_edges):
        src, dst, n = dedup_edges
        ref = build_csr_serial(src, dst, n)
        pcsr = PCSRGraph.from_csr(ref)
        assert pcsr.to_csr() == ref

    def test_duplicate_edges_collapse(self):
        g = PCSRGraph(4)
        assert g.add_edge(0, 1)
        assert not g.add_edge(0, 1)
        assert g.num_edges == 1

    def test_node_universe_validation(self):
        with pytest.raises(ValidationError):
            PCSRGraph(-1)
        with pytest.raises(ValidationError):
            PCSRGraph(2**32)


class TestDynamics:
    def test_interleaved_updates_match_rebuilt_csr(self, rng):
        n = 40
        g = PCSRGraph(n)
        ref: set[tuple[int, int]] = set()
        for step in range(1200):
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if rng.random() < 0.65:
                assert g.add_edge(u, v) == ((u, v) not in ref)
                ref.add((u, v))
            else:
                assert g.delete_edge(u, v) == ((u, v) in ref)
                ref.discard((u, v))
            if step % 300 == 0:
                g.check_invariants()
        snapshot = g.to_csr()
        src = np.array(sorted(ref)) if ref else np.zeros((0, 2), dtype=np.int64)
        if ref:
            exp = build_csr_serial(src[:, 0], src[:, 1], n)
            assert snapshot == exp
        assert g.num_edges == len(ref)

    def test_apply_batch(self):
        g = PCSRGraph(10)
        added, deleted = g.apply_batch(
            additions=(np.array([0, 0, 1]), np.array([1, 2, 0]))
        )
        assert (added, deleted) == (3, 0)
        added, deleted = g.apply_batch(
            additions=(np.array([0]), np.array([1])),  # duplicate
            deletions=(np.array([0, 5]), np.array([2, 5])),  # one absent
        )
        assert (added, deleted) == (0, 1)
        assert g.num_edges == 2

    def test_delete_everything(self, dedup_edges):
        src, dst, n = dedup_edges
        g = PCSRGraph.from_edges(src, dst, n)
        for u, v in zip(src.tolist(), dst.tolist()):
            assert g.delete_edge(u, v)
        assert g.num_edges == 0
        assert g.neighbors(0).shape == (0,)
        g.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 7), st.integers(0, 7)), max_size=120))
    def test_property_matches_edge_set(self, ops):
        g = PCSRGraph(8)
        ref: set[tuple[int, int]] = set()
        for add, u, v in ops:
            if add:
                g.add_edge(u, v)
                ref.add((u, v))
            else:
                g.delete_edge(u, v)
                ref.discard((u, v))
        for u in range(8):
            assert g.neighbors(u).tolist() == sorted(v for (x, v) in ref if x == u)


class TestQueries:
    def test_satisfies_graph_store(self, dedup_edges):
        src, dst, n = dedup_edges
        g = PCSRGraph.from_edges(src[:100], dst[:100], n)
        assert isinstance(g, GraphStore)
        engine = QueryEngine(g, SimulatedMachine(3))
        assert engine.has_edge(int(src[0]), int(dst[0]))

    def test_range_checks(self):
        g = PCSRGraph(3)
        with pytest.raises(QueryError):
            g.add_edge(0, 3)
        with pytest.raises(QueryError):
            g.neighbors(-1)
