"""The algorithm registry and the stepper protocol."""

import numpy as np
import pytest

from repro.algorithms import (
    AlgorithmResult,
    AlgorithmStepper,
    available_algorithms,
    get_algorithm_spec,
    make_stepper,
    register_algorithm,
    run,
)
from repro.algorithms import registry as registry_module
from repro.csr.builder import build_csr_serial
from repro.errors import ValidationError


@pytest.fixture
def store(rng):
    n, m = 40, 300
    src = np.sort(rng.integers(0, n, m))
    return build_csr_serial(src, rng.integers(0, n, m), n)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_algorithms()
        assert {"bfs", "pagerank", "triangles"} <= set(names)
        assert names == sorted(names)

    def test_unknown_name_lists_choices(self, store):
        with pytest.raises(ValidationError, match="known: .*bfs.*pagerank"):
            run("nope", store)
        with pytest.raises(ValidationError, match="unknown algorithm"):
            get_algorithm_spec("nope")

    def test_spec_carries_description(self):
        spec = get_algorithm_spec("bfs")
        assert spec.name == "bfs"
        assert "source" in spec.description
        assert spec.factory is not None

    def test_duplicate_registration_rejected(self):
        spec = get_algorithm_spec("bfs")
        with pytest.raises(ValidationError, match="already registered"):
            register_algorithm("bfs", spec.factory, "again")
        # replace=True is the explicit escape hatch
        register_algorithm("bfs", spec.factory, spec.description, replace=True)
        assert get_algorithm_spec("bfs").factory is spec.factory

    def test_custom_registration_reachable_by_name(self, store):
        class Constant(AlgorithmStepper):
            name = "constant"

            def __init__(self, store, executor=None, *, value=7):
                super().__init__(store, executor)
                self.value = value

            def _advance(self):
                self._finish(self.value)

        register_algorithm("constant-test", Constant, "returns its param")
        try:
            assert "constant-test" in available_algorithms()
            result = run("constant-test", store, value=11)
            assert result.value == 11
            assert result.name == "constant"
        finally:
            registry_module._REGISTRY.pop("constant-test", None)


class TestStepperProtocol:
    def test_result_before_done_raises(self, store):
        stepper = make_stepper("bfs", store, source=0)
        with pytest.raises(ValidationError, match="not finished"):
            stepper.result()

    def test_step_after_done_is_noop(self, store):
        stepper = make_stepper("bfs", store, source=0)
        result = stepper.run()
        steps = stepper.steps
        assert stepper.step() is True  # polling a finished stepper
        assert stepper.steps == steps
        assert stepper.result() is result

    def test_run_returns_algorithm_result(self, store):
        result = run("pagerank", store, max_iter=3)
        assert isinstance(result, AlgorithmResult)
        assert result.name == "pagerank"
        assert result.rounds == 3
        assert result.converged is False  # hit the cap, not tolerance
        assert result.value.shape == (store.num_nodes,)

    def test_bad_params_raise_at_construction(self, store):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            make_stepper("bfs", store, source=10**9)
        with pytest.raises(ValidationError):
            make_stepper("pagerank", store, damping=1.5)
        with pytest.raises(ValidationError):
            make_stepper("triangles", store, method="sorcery")
