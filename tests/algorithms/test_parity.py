"""Property tests: every algorithm is value-exact on every store kind.

The engine's whole claim is store-genericity: BFS levels, PageRank
vectors, and triangle counts computed through the capabilities layer
must equal the raw-CSR reference kernels **bit-for-bit** (PageRank to
1e-12 — summation order differs) on every registered store kind, under
both the serial executor and a simulated multiprocessor, at adversarial
slice sizes (slicing must be observationally invisible).

Edge lists are deduplicated before building: the lsm store's merged
view is a set of edges, so cross-kind parity is defined on the simple
graph.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import run
from repro.csr.builder import build_csr_serial
from repro.csr.spmv import pagerank as pagerank_ref
from repro.csr.traversal import bfs_levels
from repro.parallel import SerialExecutor, SimulatedMachine
from repro.stores import open_store

STORE_KINDS = ("packed", "compact", "disk", "sharded", "lsm")
EXECUTORS = [
    ("serial", lambda: SerialExecutor()),
    ("sim-p3", lambda: SimulatedMachine(3)),
]
SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def edge_lists(draw):
    """A deduplicated random edge list over a small node range."""
    n = draw(st.integers(2, 48))
    m = draw(st.integers(0, 250))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    if m:
        pairs = np.unique(np.stack([src, dst], 1), axis=0)
        src, dst = pairs[:, 0], pairs[:, 1]
    return src.astype(np.int64), dst.astype(np.int64), n


def _build(kind, src, dst, n):
    opts = {"shards": 3} if kind == "sharded" else {}
    return open_store(kind, src, dst, n, sort=True, **opts)


@pytest.mark.parametrize("exec_name,make_executor", EXECUTORS,
                         ids=[e[0] for e in EXECUTORS])
@pytest.mark.parametrize("kind", STORE_KINDS)
class TestParity:
    @settings(**SETTINGS)
    @given(data=st.data(), edges=edge_lists())
    def test_bfs_levels_bit_exact(self, kind, exec_name, make_executor,
                                  data, edges):
        src, dst, n = edges
        ref_graph = build_csr_serial(src, dst, n)
        source = data.draw(st.integers(0, n - 1))
        ref = bfs_levels(ref_graph, source)
        got = run(
            "bfs", _build(kind, src, dst, n), make_executor(),
            source=source,
            slice_nodes=data.draw(st.sampled_from([1, 3, 13, 4096])),
            dense_threshold=data.draw(st.sampled_from([1 / 64, 1 / 16, 1.0])),
        )
        assert np.array_equal(got.value, ref)
        assert got.value.dtype == ref.dtype

    @settings(**SETTINGS)
    @given(data=st.data(), edges=edge_lists())
    def test_pagerank_value_exact(self, kind, exec_name, make_executor,
                                  data, edges):
        src, dst, n = edges
        ref_graph = build_csr_serial(src, dst, n)
        max_iter = data.draw(st.integers(1, 6))
        damping = data.draw(st.sampled_from([0.5, 0.85]))
        ref = pagerank_ref(ref_graph, damping=damping, max_iter=max_iter)
        got = run(
            "pagerank", _build(kind, src, dst, n), make_executor(),
            damping=damping, max_iter=max_iter,
            slice_nodes=data.draw(st.sampled_from([1, 7, 17, 8192])),
        )
        assert np.allclose(got.value, ref, atol=1e-12)
        assert got.rounds == max_iter or got.converged

    @settings(**SETTINGS)
    @given(data=st.data(), edges=edge_lists())
    def test_triangles_exact(self, kind, exec_name, make_executor,
                             data, edges):
        src, dst, n = edges
        adj = np.zeros((n, n), dtype=np.int64)
        adj[src, dst] = 1
        ref = int(np.einsum("uv,uw,vw->", adj, adj, adj))
        ref -= int(np.einsum("uv,vv->", adj, adj))  # v == w terms
        got = run(
            "triangles", _build(kind, src, dst, n), make_executor(),
            slice_wedges=data.draw(st.sampled_from([1, 5, 100, 1 << 15])),
            method=data.draw(st.sampled_from(["scan", "bisect"])),
        )
        assert int(got.value) == ref
