"""Compaction bit-exactness gate (ISSUE 7 acceptance criterion).

Property test: drive an LsmStore with a random insert/delete stream
(mirrored into a dict-of-sets model), compacting on a watermark.
After EVERY compaction the store must answer queries identically to a
from-scratch rebuild of the same logical edge set through the plain
``open_store`` path — across inner segment kinds and executors.
"""

import numpy as np
import pytest

from repro import open_store
from repro.lsm import build_lsm_store
from repro.query import capabilities
from repro.query.stores import neighbors_batch

INNER_KINDS = ("packed", "csr", "compact")


def _logical(ref):
    us, vs = [], []
    for u in sorted(ref):
        for v in sorted(ref[u]):
            us.append(u)
            vs.append(v)
    return np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)


def _assert_bit_exact(store, ref, n, inner, executor):
    src, dst = _logical(ref)
    rebuilt = open_store(inner, src, dst, n, executor=executor)
    assert store.num_edges == rebuilt.num_edges
    for u in range(n):
        assert np.array_equal(
            np.asarray(store.neighbors(u), dtype=np.int64),
            np.asarray(rebuilt.neighbors(u), dtype=np.int64),
        ), f"row {u} diverged after compaction (inner={inner})"
    us = np.arange(n, dtype=np.int64)
    flat, offs = neighbors_batch(store, us, capabilities(store))
    rflat, roffs = neighbors_batch(rebuilt, us, capabilities(rebuilt))
    assert np.array_equal(offs, roffs)
    assert np.array_equal(
        np.asarray(flat, dtype=np.int64), np.asarray(rflat, dtype=np.int64)
    )


@pytest.mark.parametrize("inner", INNER_KINDS)
def test_compaction_bit_exact_random_stream(inner, executor):
    n = 60
    rng = np.random.default_rng(0x7EA)
    keys = np.unique(rng.integers(0, n * n, 300))
    src, dst = keys // n, keys % n
    store = build_lsm_store(
        src, dst, n, inner=inner, executor=executor, compact_watermark=25
    )
    ref = {}
    for u, v in zip(src.tolist(), dst.tolist()):
        ref.setdefault(u, set()).add(v)

    compactions = 0
    for _ in range(180):
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if rng.random() < 0.3:
            store.delete_edge(u, v)
            ref.get(u, set()).discard(v)
        else:
            store.insert_edge(u, v)
            ref.setdefault(u, set()).add(v)
        if store.maybe_compact(executor=executor):
            compactions += 1
            assert len(store.memtable) == 0
            _assert_bit_exact(store, ref, n, inner, executor)
    assert compactions >= 2, "watermark never tripped — test is vacuous"
    # final explicit compaction from whatever residue remains
    store.compact(executor=executor)
    _assert_bit_exact(store, ref, n, inner, executor)


@pytest.mark.parametrize("inner", INNER_KINDS)
def test_flush_then_compact_bit_exact(inner, executor):
    """Multi-segment stores (base + flushed delta) compact correctly."""
    n = 40
    rng = np.random.default_rng(0xF1)
    keys = np.unique(rng.integers(0, n * n, 150))
    store = build_lsm_store(keys // n, keys % n, n, inner=inner, executor=executor)
    ref = {}
    for u, v in zip((keys // n).tolist(), (keys % n).tolist()):
        ref.setdefault(u, set()).add(v)
    for _ in range(60):
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if rng.random() < 0.25:
            store.delete_edge(u, v)
            ref.get(u, set()).discard(v)
        else:
            store.insert_edge(u, v)
            ref.setdefault(u, set()).add(v)
    store.flush(executor=executor)
    assert len(store.segments) == 2
    _assert_bit_exact(store, ref, n, inner, executor)
    store.compact(executor=executor)
    assert len(store.segments) == 1
    _assert_bit_exact(store, ref, n, inner, executor)


def test_compaction_of_emptied_graph(executor):
    """Deleting every edge then compacting yields an empty segment."""
    src = np.array([0, 1, 2])
    dst = np.array([1, 2, 0])
    store = build_lsm_store(src, dst, 3, executor=executor)
    for u, v in zip(src.tolist(), dst.tolist()):
        assert store.delete_edge(u, v)
    store.compact(executor=executor)
    assert store.num_edges == 0
    assert len(store.memtable) == 0
    for u in range(3):
        assert store.neighbors(u).tolist() == []


def test_disk_inner_compaction_generations(tmp_path):
    """The disk inner kind re-packs into per-generation subdirectories."""
    n = 30
    rng = np.random.default_rng(3)
    keys = np.unique(rng.integers(0, n * n, 120))
    store = build_lsm_store(
        keys // n, keys % n, n, inner="disk", path=tmp_path / "seg"
    )
    ref = {}
    for u, v in zip((keys // n).tolist(), (keys % n).tolist()):
        ref.setdefault(u, set()).add(v)
    for _ in range(40):
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        store.insert_edge(u, v)
        ref.setdefault(u, set()).add(v)
    store.compact()
    _assert_bit_exact(store, ref, n, "packed", None)
    # a second compaction cycle lands in a fresh generation directory
    store.insert_edge(0, n - 1)
    ref.setdefault(0, set()).add(n - 1)
    store.compact()
    _assert_bit_exact(store, ref, n, "packed", None)
