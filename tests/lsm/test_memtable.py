"""DeltaMemtable unit behaviour: state transitions and counters."""

import numpy as np
import pytest

from repro.lsm import DeltaMemtable


class TestStateMachine:
    def test_empty(self):
        mt = DeltaMemtable()
        assert len(mt) == 0
        assert mt.tombstones == 0
        assert mt.state(1, 2) is None
        assert not mt.is_dirty(1)
        assert mt.row_delta(1) is None

    def test_insert_then_query(self):
        mt = DeltaMemtable()
        mt.insert(3, 7)
        assert len(mt) == 1
        assert mt.tombstones == 0
        assert mt.state(3, 7) is True
        assert mt.state(3, 8) is None
        assert mt.is_dirty(3)

    def test_delete_records_tombstone(self):
        mt = DeltaMemtable()
        mt.delete(3, 7)
        assert len(mt) == 1
        assert mt.tombstones == 1
        assert mt.state(3, 7) is False

    def test_insert_overwrites_tombstone(self):
        mt = DeltaMemtable()
        mt.delete(3, 7)
        mt.insert(3, 7)
        assert len(mt) == 1
        assert mt.tombstones == 0
        assert mt.state(3, 7) is True

    def test_delete_overwrites_insert(self):
        mt = DeltaMemtable()
        mt.insert(3, 7)
        mt.delete(3, 7)
        assert len(mt) == 1
        assert mt.tombstones == 1
        assert mt.state(3, 7) is False

    def test_idempotent_rewrites_keep_counts(self):
        mt = DeltaMemtable()
        mt.insert(3, 7)
        mt.insert(3, 7)
        mt.delete(4, 1)
        mt.delete(4, 1)
        assert len(mt) == 2
        assert mt.tombstones == 1

    def test_remove_drops_entry_entirely(self):
        mt = DeltaMemtable()
        mt.insert(3, 7)
        mt.remove(3, 7)
        assert len(mt) == 0
        assert mt.state(3, 7) is None
        assert not mt.is_dirty(3)
        mt.delete(5, 5)
        mt.remove(5, 5)
        assert mt.tombstones == 0
        # removing a missing entry is a no-op
        mt.remove(9, 9)
        assert len(mt) == 0


class TestRowDelta:
    def test_sorted_adds_and_dels(self):
        mt = DeltaMemtable()
        for v in (9, 2, 5):
            mt.insert(1, v)
        for v in (8, 3):
            mt.delete(1, v)
        adds, dels = mt.row_delta(1)
        assert adds.tolist() == [2, 5, 9]
        assert dels.tolist() == [3, 8]
        assert adds.dtype == np.int64 and dels.dtype == np.int64

    def test_cache_invalidated_on_write(self):
        mt = DeltaMemtable()
        mt.insert(1, 2)
        assert mt.row_delta(1)[0].tolist() == [2]
        mt.insert(1, 4)
        assert mt.row_delta(1)[0].tolist() == [2, 4]
        mt.remove(1, 2)
        assert mt.row_delta(1)[0].tolist() == [4]

    def test_dirty_nodes_sorted(self):
        mt = DeltaMemtable()
        mt.insert(9, 1)
        mt.delete(2, 1)
        assert mt.dirty_nodes().tolist() == [2, 9]


class TestSerialisation:
    def test_entries_roundtrip(self):
        mt = DeltaMemtable()
        mt.insert(5, 1)
        mt.delete(2, 9)
        mt.insert(2, 3)
        us, vs, alive = mt.entries()
        assert us.tolist() == [2, 2, 5]
        assert vs.tolist() == [3, 9, 1]
        assert alive.tolist() == [True, False, True]
        back = DeltaMemtable.from_entries(us, vs, alive)
        assert len(back) == len(mt)
        assert back.tombstones == mt.tombstones
        for u, v, a in zip(us.tolist(), vs.tolist(), alive.tolist()):
            assert back.state(u, v) is a

    def test_from_entries_shape_mismatch(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            DeltaMemtable.from_entries([1, 2], [3], [True])

    def test_clear(self):
        mt = DeltaMemtable()
        mt.insert(1, 2)
        mt.delete(3, 4)
        mt.clear()
        assert len(mt) == 0
        assert mt.tombstones == 0
        assert mt.row_delta(1) is None

    def test_memory_bytes_grows(self):
        mt = DeltaMemtable()
        empty = mt.memory_bytes()
        for v in range(50):
            mt.insert(0, v)
        assert mt.memory_bytes() > empty
