"""LsmStore merged reads, checked writes, and persistence.

A dict-of-sets reference model shadows every mutation, so each
assertion compares the store's merged view against independently
tracked truth.
"""

import numpy as np
import pytest

from repro import open_store
from repro.errors import QueryError, ValidationError
from repro.lsm import LsmStore, build_lsm_store
from repro.query import capabilities
from repro.query.stores import neighbors_batch


@pytest.fixture
def edges():
    rng = np.random.default_rng(0x15A)
    n = 80
    keys = np.unique(rng.integers(0, n * n, 600))
    return keys // n, keys % n, n


def _model(src, dst):
    ref: dict[int, set[int]] = {}
    for u, v in zip(src.tolist(), dst.tolist()):
        ref.setdefault(u, set()).add(v)
    return ref


def _assert_matches(store, ref, n):
    for u in range(n):
        want = sorted(ref.get(u, set()))
        got = store.neighbors(u)
        assert got.tolist() == want, f"row {u}"
        assert store.degree(u) == len(want)
    total = sum(len(s) for s in ref.values())
    assert store.num_edges == total


class TestReads:
    def test_clean_store_matches_base(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n)
        _assert_matches(store, _model(src, dst), n)

    def test_duplicate_edges_fold_to_set(self):
        src = np.array([0, 0, 0, 1])
        dst = np.array([2, 2, 3, 0])
        store = build_lsm_store(src, dst, 4)
        assert store.num_edges == 3
        assert store.neighbors(0).tolist() == [2, 3]

    def test_empty_graph(self):
        store = build_lsm_store([], [], 5)
        assert store.num_edges == 0
        assert store.neighbors(2).tolist() == []
        assert not store.has_edge(0, 1)
        store.insert_edge(0, 1)
        assert store.has_edge(0, 1)
        assert store.num_edges == 1

    def test_out_of_range_rejected(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n)
        with pytest.raises(QueryError):
            store.neighbors(n)
        with pytest.raises(QueryError):
            store.has_edge(0, n)
        with pytest.raises(QueryError):
            store.insert_edge(-1, 0)
        with pytest.raises(QueryError):
            store.neighbors_batch(np.array([0, n]))

    def test_batch_matches_scalar_dirty_and_clean(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n)
        store.insert_edge(0, 79)
        store.delete_edge(int(src[0]), int(dst[0]))
        us = np.random.default_rng(1).integers(0, n, 60)
        caps = capabilities(store)
        flat, offs = neighbors_batch(store, us, caps)
        assert flat.dtype == caps.row_dtype == np.dtype(np.int64)
        for i, u in enumerate(us.tolist()):
            assert np.array_equal(flat[offs[i]: offs[i + 1]], store.neighbors(u))

    def test_degrees_vector(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n)
        store.insert_edge(3, 3)
        degs = store.degrees()
        assert degs.shape == (n,)
        assert degs.tolist() == [store.degree(u) for u in range(n)]


class TestWrites:
    def test_checked_writes_and_noops(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n)
        ref = _model(src, dst)
        u0, v0 = int(src[0]), int(dst[0])
        # inserting an existing edge is a no-op
        assert store.insert_edge(u0, v0) is False
        assert store.write_noops == 1
        # deleting a base edge tombstones it
        assert store.delete_edge(u0, v0) is True
        ref[u0].discard(v0)
        assert not store.has_edge(u0, v0)
        assert store.memtable.tombstones == 1
        # deleting again is a no-op
        assert store.delete_edge(u0, v0) is False
        # re-inserting resurrects it
        assert store.insert_edge(u0, v0) is True
        ref[u0].add(v0)
        _assert_matches(store, ref, n)

    def test_delete_of_memtable_only_insert_leaves_no_tombstone(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n)
        store.insert_edge(0, 42) if not store.has_edge(0, 42) else None
        before = len(store.memtable)
        assert store.delete_edge(0, 42) is True
        assert store.memtable.tombstones == 0
        assert len(store.memtable) < before

    def test_random_stream_matches_model(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n)
        ref = _model(src, dst)
        rng = np.random.default_rng(9)
        for _ in range(400):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if rng.random() < 0.35:
                assert store.delete_edge(u, v) is (v in ref.get(u, set()))
                ref.get(u, set()).discard(v)
            else:
                assert store.insert_edge(u, v) is (v not in ref.get(u, set()))
                ref.setdefault(u, set()).add(v)
        _assert_matches(store, ref, n)

    def test_maybe_compact_watermark(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n, compact_watermark=10)
        rng = np.random.default_rng(2)
        compactions = 0
        for _ in range(50):
            store.insert_edge(int(rng.integers(0, n)), int(rng.integers(0, n)))
            if store.maybe_compact():
                compactions += 1
                assert len(store.memtable) == 0
                assert len(store.segments) == 1
        assert compactions >= 1
        assert store.stats().compactions == compactions

    def test_flush_appends_segment_keeps_tombstones(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n)
        ref = _model(src, dst)
        u0, v0 = int(src[0]), int(dst[0])
        store.delete_edge(u0, v0)
        ref[u0].discard(v0)
        added = []
        rng = np.random.default_rng(5)
        while len(added) < 20:
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if store.insert_edge(u, v):
                ref.setdefault(u, set()).add(v)
                added.append((u, v))
        store.flush()
        assert len(store.segments) == 2
        assert store.memtable.tombstones == 1
        assert store.stats().flushes == 1
        _assert_matches(store, ref, n)
        # compaction folds the multi-segment store back down
        store.compact()
        assert len(store.segments) == 1
        _assert_matches(store, ref, n)


class TestStructure:
    def test_segment_node_space_checked(self, edges):
        src, dst, n = edges
        seg = open_store("packed", src, dst, n)
        with pytest.raises(ValidationError):
            LsmStore(n + 1, [seg])

    def test_stats_shape(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n, compact_watermark=7)
        s = store.stats()
        assert s.segments == 1
        assert s.compact_watermark == 7
        assert s.logical_edges == store.num_edges

    def test_memory_bytes_counts_memtable(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n)
        base = store.memory_bytes()
        for v in range(30):
            store.insert_edge(0, v)
        assert store.memory_bytes() > base

    def test_page_touch_surface_absent_for_memory_segments(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n)
        assert not hasattr(store, "take_page_touches")
        assert not capabilities(store).counts_page_touches

    def test_supports_writes_capability(self, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n)
        assert capabilities(store).supports_writes
        assert not capabilities(store.segments[0]).supports_writes


class TestPersistence:
    def test_save_load_roundtrip_with_live_memtable(self, tmp_path, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n)
        store.insert_edge(1, 77)
        store.delete_edge(int(src[0]), int(dst[0]))
        path = tmp_path / "live.npz"
        store.save(path)
        loaded = LsmStore.load(path)
        assert loaded.num_edges == store.num_edges
        assert len(loaded.memtable) == len(store.memtable)
        assert loaded.memtable.tombstones == store.memtable.tombstones
        for u in range(n):
            assert np.array_equal(loaded.neighbors(u), store.neighbors(u))

    def test_save_rejects_unpacked_segments(self, tmp_path, edges):
        src, dst, n = edges
        store = build_lsm_store(src, dst, n, inner="csr")
        with pytest.raises(ValidationError):
            store.save(tmp_path / "bad.npz")

    def test_load_rejects_other_kinds(self, tmp_path, edges):
        src, dst, n = edges
        packed = open_store("packed", src, dst, n)
        path = tmp_path / "packed.npz"
        packed.save(path)
        with pytest.raises(ValidationError):
            LsmStore.load(path)
