"""Per-segment codec layer: selection rule, round-trips, error paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.delta import row_gaps
from repro.bitpack.segcodec import (
    DEFAULT_CANDIDATES,
    SEGMENT_CODECS,
    decode_rows,
    encode_row_segment,
    resolve_codecs,
)
from repro.errors import CodecError, ValidationError


def _segment(rng, *, num_rows, max_deg, max_id, empty_every=0):
    """A sorted row segment: (values, local_indptr)."""
    degs = rng.integers(0, max_deg + 1, num_rows)
    if empty_every:
        degs[::empty_every] = 0
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(degs, out=indptr[1:])
    vals = rng.integers(0, max_id + 1, int(indptr[-1])).astype(np.uint64)
    for r in range(num_rows):
        vals[indptr[r]:indptr[r + 1]].sort()
    return vals, indptr


def _roundtrip(enc, vals, indptr):
    num_rows = indptr.shape[0] - 1
    rows = np.arange(num_rows, dtype=np.int64)
    degrees = np.diff(indptr)
    flat, offsets = decode_rows(
        enc.codec, enc.payload, enc.enc_width, enc.starts, enc.starts_width,
        rows, degrees, indptr[:-1],
    )
    assert np.array_equal(offsets, indptr)
    assert np.array_equal(flat, vals)


class TestSelection:
    def test_auto_is_default(self):
        assert resolve_codecs(None) == DEFAULT_CANDIDATES
        assert resolve_codecs("auto") == DEFAULT_CANDIDATES
        assert resolve_codecs("varint") == ("varint",)
        assert resolve_codecs("fixed,zeta2") == ("fixed", "zeta2")
        assert resolve_codecs(["zeta3"]) == ("zeta3",)

    def test_unknown_codec_one_line_error(self):
        with pytest.raises(CodecError, match=r"unknown codec 'snappy' \(known: "):
            resolve_codecs("snappy")
        with pytest.raises(ValidationError):
            resolve_codecs([])

    def test_winner_is_smallest_total(self, rng):
        vals, indptr = _segment(rng, num_rows=120, max_deg=30, max_id=100_000)
        gaps = row_gaps(indptr, vals)
        best = encode_row_segment(gaps, indptr, SEGMENT_CODECS)
        sizes = {
            name: encode_row_segment(gaps, indptr, [name]).total_bits
            for name in SEGMENT_CODECS
        }
        assert best.total_bits == min(sizes.values())

    def test_starts_table_counts_against_variable_codecs(self):
        # one dense row of tiny gaps: fixed needs ~2 bits/field while
        # varint pays 8 bits/field plus its table — fixed must win
        vals = np.sort(np.arange(0, 600, 2, dtype=np.uint64))
        indptr = np.array([0, vals.shape[0]], dtype=np.int64)
        enc = encode_row_segment(row_gaps(indptr, vals), indptr)
        assert enc.codec == "fixed"


class TestRoundtrip:
    @pytest.mark.parametrize("codec", SEGMENT_CODECS)
    def test_zipf_rows(self, rng, codec):
        vals, indptr = _segment(rng, num_rows=80, max_deg=50, max_id=1 << 20)
        enc = encode_row_segment(row_gaps(indptr, vals), indptr, [codec])
        assert enc.codec == codec
        _roundtrip(enc, vals, indptr)

    @pytest.mark.parametrize("codec", SEGMENT_CODECS)
    def test_empty_and_single_node_rows(self, rng, codec):
        vals, indptr = _segment(
            rng, num_rows=60, max_deg=3, max_id=9, empty_every=4
        )
        enc = encode_row_segment(row_gaps(indptr, vals), indptr, [codec])
        _roundtrip(enc, vals, indptr)

    @pytest.mark.parametrize("codec", SEGMENT_CODECS)
    def test_all_rows_empty(self, codec):
        indptr = np.zeros(12, dtype=np.int64)
        vals = np.zeros(0, dtype=np.uint64)
        enc = encode_row_segment(row_gaps(indptr, vals), indptr, [codec])
        _roundtrip(enc, vals, indptr)

    @pytest.mark.parametrize("codec", SEGMENT_CODECS)
    def test_adversarial_gap_mixture(self, rng, codec):
        # rows alternating huge first ids with runs of duplicates
        # (zero gaps) and near-2^40 jumps
        rows = [
            np.array([], dtype=np.uint64),
            np.array([0], dtype=np.uint64),
            np.array([2**40], dtype=np.uint64),
            np.array([7, 7, 7, 7, 7], dtype=np.uint64),
            np.sort(rng.integers(0, 2**40, 33).astype(np.uint64)),
            np.array([2**40 - 1, 2**40], dtype=np.uint64),
        ]
        vals = np.concatenate(rows).astype(np.uint64)
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum([r.shape[0] for r in rows], out=indptr[1:])
        enc = encode_row_segment(row_gaps(indptr, vals), indptr, [codec])
        _roundtrip(enc, vals, indptr)

    @pytest.mark.parametrize("codec", SEGMENT_CODECS)
    def test_subset_of_rows_any_order(self, rng, codec):
        vals, indptr = _segment(rng, num_rows=50, max_deg=12, max_id=5000)
        enc = encode_row_segment(row_gaps(indptr, vals), indptr, [codec])
        rows = rng.permutation(50)[:17].astype(np.int64)
        degrees = np.diff(indptr)[rows]
        flat, offsets = decode_rows(
            enc.codec, enc.payload, enc.enc_width, enc.starts, enc.starts_width,
            rows, degrees, indptr[:-1][rows],
        )
        for i, r in enumerate(rows):
            assert np.array_equal(
                flat[offsets[i]:offsets[i + 1]], vals[indptr[r]:indptr[r + 1]]
            )

    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(SEGMENT_CODECS),
        st.lists(
            st.lists(st.integers(0, 2**32), max_size=12), max_size=14
        ),
    )
    def test_property(self, codec, row_lists):
        rows = [np.sort(np.asarray(r, dtype=np.uint64)) for r in row_lists]
        vals = (
            np.concatenate(rows).astype(np.uint64)
            if rows else np.zeros(0, dtype=np.uint64)
        )
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        if rows:
            np.cumsum([r.shape[0] for r in rows], out=indptr[1:])
        enc = encode_row_segment(row_gaps(indptr, vals), indptr, [codec])
        _roundtrip(enc, vals, indptr)


class TestValidation:
    def test_indptr_must_cover_gaps(self):
        with pytest.raises(ValidationError):
            encode_row_segment(
                np.array([1, 2, 3], dtype=np.uint64),
                np.array([0, 2], dtype=np.int64),
            )

    def test_unknown_codec_in_decode(self):
        from repro.bitpack.bitarray import BitArray

        with pytest.raises(CodecError, match="unknown codec"):
            decode_rows(
                "snappy", BitArray(np.zeros(0, dtype=np.uint8), 0), 0, None, 0,
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
            )
