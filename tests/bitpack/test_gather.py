"""The gather-decode kernel: many field runs in one vectorised pass.

``unpack_fields_gather`` must be bit-exact against the scalar path
(``unpack_slice`` per run) for every width, run geometry, and stream
offset — the batched query algorithms stand on this kernel.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.fixed import (
    pack_fixed,
    read_field,
    read_fields,
    unpack_fields_gather,
    unpack_slice,
)
from repro.errors import CodecError, ValidationError


def _reference(bits, width, starts, counts):
    """Scalar per-run decode — the parity oracle."""
    runs = [unpack_slice(bits, width, int(s), int(c)) for s, c in zip(starts, counts)]
    offsets = np.zeros(len(runs) + 1, dtype=np.int64)
    np.cumsum([r.shape[0] for r in runs], out=offsets[1:])
    flat = np.concatenate(runs) if runs else np.zeros(0, dtype=np.uint64)
    return flat, offsets


class TestUnpackFieldsGather:
    @pytest.mark.parametrize("width", [1, 3, 7, 8, 9, 17, 31, 32, 33, 63, 64])
    def test_matches_scalar_runs(self, width, rng):
        nfields = 400
        hi = (1 << width) - 1
        values = rng.integers(0, hi, nfields, dtype=np.uint64, endpoint=True)
        bits = pack_fixed(values, width)
        starts = rng.integers(0, nfields, 50)
        counts = np.minimum(rng.integers(0, 40, 50), nfields - starts)
        got_flat, got_offs = unpack_fields_gather(bits, width, starts, counts)
        want_flat, want_offs = _reference(bits, width, starts, counts)
        assert got_flat.dtype == np.uint64
        assert np.array_equal(got_offs, want_offs)
        assert np.array_equal(got_flat, want_flat)

    def test_empty_request(self, rng):
        bits = pack_fixed(rng.integers(0, 100, 20), 7)
        flat, offs = unpack_fields_gather(bits, 7, [], [])
        assert flat.shape == (0,)
        assert np.array_equal(offs, [0])

    def test_all_zero_counts(self, rng):
        bits = pack_fixed(rng.integers(0, 100, 20), 7)
        flat, offs = unpack_fields_gather(bits, 7, [3, 5, 19], [0, 0, 0])
        assert flat.shape == (0,)
        assert np.array_equal(offs, [0, 0, 0, 0])

    def test_overlapping_and_duplicate_runs(self, rng):
        values = rng.integers(0, 1 << 11, 64, dtype=np.uint64)
        bits = pack_fixed(values, 11)
        starts = np.array([0, 0, 10, 5, 63])
        counts = np.array([64, 64, 20, 30, 1])
        flat, offs = unpack_fields_gather(bits, 11, starts, counts)
        want, _ = _reference(bits, 11, starts, counts)
        assert np.array_equal(flat, want)

    def test_out_of_range_rejected(self, rng):
        bits = pack_fixed(rng.integers(0, 100, 10), 7)
        with pytest.raises(CodecError):
            unpack_fields_gather(bits, 7, [5], [6])
        with pytest.raises(ValidationError):
            unpack_fields_gather(bits, 7, [-1], [1])
        with pytest.raises(ValidationError):
            unpack_fields_gather(bits, 7, [0], [-1])
        with pytest.raises(ValidationError):
            unpack_fields_gather(bits, 7, [0, 1], [1])
        with pytest.raises(ValidationError):
            unpack_fields_gather(bits, 0, [0], [1])

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.data(),
        width=st.integers(1, 64),
        nfields=st.integers(1, 120),
    )
    def test_property_parity(self, data, width, nfields):
        values = data.draw(
            st.lists(
                st.integers(0, (1 << width) - 1), min_size=nfields, max_size=nfields
            )
        )
        bits = pack_fixed(np.asarray(values, dtype=np.uint64), width)
        nruns = data.draw(st.integers(0, 8))
        starts = np.asarray(
            data.draw(
                st.lists(st.integers(0, nfields), min_size=nruns, max_size=nruns)
            ),
            dtype=np.int64,
        )
        counts = np.asarray(
            [data.draw(st.integers(0, nfields - int(s))) for s in starts],
            dtype=np.int64,
        )
        got_flat, got_offs = unpack_fields_gather(bits, width, starts, counts)
        want_flat, want_offs = _reference(bits, width, starts, counts)
        assert np.array_equal(got_offs, want_offs)
        assert np.array_equal(got_flat, want_flat)


class TestReadFields:
    def test_matches_read_field(self, rng):
        values = rng.integers(0, 1 << 13, 200, dtype=np.uint64)
        bits = pack_fixed(values, 13)
        idx = rng.integers(0, 200, 64)
        got = read_fields(bits, 13, idx)
        want = np.array([read_field(bits, 13, int(i)) for i in idx], dtype=np.uint64)
        assert np.array_equal(got, want)

    def test_empty(self, rng):
        bits = pack_fixed(rng.integers(0, 8, 4), 3)
        assert read_fields(bits, 3, []).shape == (0,)
