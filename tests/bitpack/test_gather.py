"""The gather-decode kernel: many field runs in one vectorised pass.

``unpack_fields_gather`` must be bit-exact against the scalar path
(``unpack_slice`` per run) for every width, run geometry, and stream
offset — the batched query algorithms stand on this kernel.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.fixed import (
    pack_fixed,
    read_field,
    read_fields,
    unpack_fields_gather,
    unpack_slice,
)
from repro.errors import CodecError, ValidationError


def _reference(bits, width, starts, counts):
    """Scalar per-run decode — the parity oracle."""
    runs = [unpack_slice(bits, width, int(s), int(c)) for s, c in zip(starts, counts)]
    offsets = np.zeros(len(runs) + 1, dtype=np.int64)
    np.cumsum([r.shape[0] for r in runs], out=offsets[1:])
    flat = np.concatenate(runs) if runs else np.zeros(0, dtype=np.uint64)
    return flat, offsets


class TestUnpackFieldsGather:
    @pytest.mark.parametrize("width", [1, 3, 7, 8, 9, 17, 31, 32, 33, 63, 64])
    def test_matches_scalar_runs(self, width, rng):
        nfields = 400
        hi = (1 << width) - 1
        values = rng.integers(0, hi, nfields, dtype=np.uint64, endpoint=True)
        bits = pack_fixed(values, width)
        starts = rng.integers(0, nfields, 50)
        counts = np.minimum(rng.integers(0, 40, 50), nfields - starts)
        got_flat, got_offs = unpack_fields_gather(bits, width, starts, counts)
        want_flat, want_offs = _reference(bits, width, starts, counts)
        assert got_flat.dtype == np.uint64
        assert np.array_equal(got_offs, want_offs)
        assert np.array_equal(got_flat, want_flat)

    def test_empty_request(self, rng):
        bits = pack_fixed(rng.integers(0, 100, 20), 7)
        flat, offs = unpack_fields_gather(bits, 7, [], [])
        assert flat.shape == (0,)
        assert np.array_equal(offs, [0])

    def test_all_zero_counts(self, rng):
        bits = pack_fixed(rng.integers(0, 100, 20), 7)
        flat, offs = unpack_fields_gather(bits, 7, [3, 5, 19], [0, 0, 0])
        assert flat.shape == (0,)
        assert np.array_equal(offs, [0, 0, 0, 0])

    def test_overlapping_and_duplicate_runs(self, rng):
        values = rng.integers(0, 1 << 11, 64, dtype=np.uint64)
        bits = pack_fixed(values, 11)
        starts = np.array([0, 0, 10, 5, 63])
        counts = np.array([64, 64, 20, 30, 1])
        flat, offs = unpack_fields_gather(bits, 11, starts, counts)
        want, _ = _reference(bits, 11, starts, counts)
        assert np.array_equal(flat, want)

    def test_out_of_range_rejected(self, rng):
        bits = pack_fixed(rng.integers(0, 100, 10), 7)
        with pytest.raises(CodecError):
            unpack_fields_gather(bits, 7, [5], [6])
        with pytest.raises(ValidationError):
            unpack_fields_gather(bits, 7, [-1], [1])
        with pytest.raises(ValidationError):
            unpack_fields_gather(bits, 7, [0], [-1])
        with pytest.raises(ValidationError):
            unpack_fields_gather(bits, 7, [0, 1], [1])
        with pytest.raises(ValidationError):
            unpack_fields_gather(bits, 0, [0], [1])

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.data(),
        width=st.integers(1, 64),
        nfields=st.integers(1, 120),
    )
    def test_property_parity(self, data, width, nfields):
        values = data.draw(
            st.lists(
                st.integers(0, (1 << width) - 1), min_size=nfields, max_size=nfields
            )
        )
        bits = pack_fixed(np.asarray(values, dtype=np.uint64), width)
        nruns = data.draw(st.integers(0, 8))
        starts = np.asarray(
            data.draw(
                st.lists(st.integers(0, nfields), min_size=nruns, max_size=nruns)
            ),
            dtype=np.int64,
        )
        counts = np.asarray(
            [data.draw(st.integers(0, nfields - int(s))) for s in starts],
            dtype=np.int64,
        )
        got_flat, got_offs = unpack_fields_gather(bits, width, starts, counts)
        want_flat, want_offs = _reference(bits, width, starts, counts)
        assert np.array_equal(got_offs, want_offs)
        assert np.array_equal(got_flat, want_flat)


class TestSparseRegime:
    """Geometries that force the sparse byte-gather regime (tiny output
    scattered across a long stream) — the kernel must stay bit-exact
    without ever copying the stream."""

    @pytest.mark.parametrize("width", [1, 3, 7, 8, 13, 31, 33, 63, 64])
    def test_scattered_fields_parity(self, width, rng):
        nfields = 5_000
        hi = (1 << width) - 1
        values = rng.integers(0, hi, nfields, dtype=np.uint64, endpoint=True)
        bits = pack_fixed(values, width)
        # first and last field of the stream plus scattered singles:
        # span_fields * width is far above 8 * total, so this exercises
        # the sparse branch for every width
        starts = np.array([0, 1, 977, 2048, 3333, nfields - 2, nfields - 1])
        counts = np.array([1, 2, 1, 1, 2, 1, 1])
        got_flat, got_offs = unpack_fields_gather(bits, width, starts, counts)
        want_flat, want_offs = _reference(bits, width, starts, counts)
        assert np.array_equal(got_offs, want_offs)
        assert np.array_equal(got_flat, want_flat)

    @pytest.mark.parametrize("width", [5, 21, 64])
    def test_fields_deep_in_stream(self, width, rng):
        """Runs that start far from field 0 — a windowing/rebasing bug
        (reading from the stream head instead of the touched bytes)
        shows up immediately here."""
        nfields = 4_096
        hi = (1 << width) - 1
        values = rng.integers(0, hi, nfields, dtype=np.uint64, endpoint=True)
        bits = pack_fixed(values, width)
        starts = np.array([4_000, 4_050, 4_090])
        counts = np.array([3, 1, 6])
        got_flat, _ = unpack_fields_gather(bits, width, starts, counts)
        want_flat, _ = _reference(bits, width, starts, counts)
        assert np.array_equal(got_flat, want_flat)

    def test_last_field_at_exact_stream_end(self, rng):
        """The final field may end on the stream's last bit; bytes past
        the stream are slack and must read as zero."""
        for width in (1, 7, 9, 63, 64):
            nfields = 1_025
            hi = (1 << width) - 1
            values = rng.integers(0, hi, nfields, dtype=np.uint64, endpoint=True)
            bits = pack_fixed(values, width)
            starts = np.array([0, nfields - 1])
            counts = np.array([1, 1])
            got_flat, _ = unpack_fields_gather(bits, width, starts, counts)
            assert got_flat[0] == values[0]
            assert got_flat[1] == values[nfields - 1]


class TestReadFields:
    def test_matches_read_field(self, rng):
        values = rng.integers(0, 1 << 13, 200, dtype=np.uint64)
        bits = pack_fixed(values, 13)
        idx = rng.integers(0, 200, 64)
        got = read_fields(bits, 13, idx)
        want = np.array([read_field(bits, 13, int(i)) for i in idx], dtype=np.uint64)
        assert np.array_equal(got, want)

    def test_empty(self, rng):
        bits = pack_fixed(rng.integers(0, 8, 4), 3)
        assert read_fields(bits, 3, []).shape == (0,)
