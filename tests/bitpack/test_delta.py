"""Gap/delta transform tests, including the row-aware CSR variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.delta import (
    delta_decode_sorted,
    delta_encode_sorted,
    row_gaps,
    rows_from_gaps,
)
from repro.errors import ValidationError


class TestFlatDelta:
    def test_roundtrip(self, rng):
        values = np.sort(rng.integers(0, 10**6, 1000).astype(np.uint64))
        assert np.array_equal(delta_decode_sorted(delta_encode_sorted(values)), values)

    def test_first_element_absolute(self):
        gaps = delta_encode_sorted(np.array([5, 7, 7, 10], dtype=np.uint64))
        assert gaps.tolist() == [5, 2, 0, 3]

    def test_rejects_unsorted(self):
        with pytest.raises(ValidationError):
            delta_encode_sorted(np.array([3, 1], dtype=np.uint64))

    def test_empty(self):
        assert delta_encode_sorted(np.zeros(0, dtype=np.uint64)).shape == (0,)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 2**40), max_size=200))
    def test_property(self, values):
        arr = np.sort(np.asarray(values, dtype=np.uint64))
        assert np.array_equal(delta_decode_sorted(delta_encode_sorted(arr)), arr)


class TestRowGaps:
    def test_resets_at_row_boundaries(self):
        indptr = np.array([0, 3, 3, 7, 10])
        indices = np.array([1, 5, 9, 0, 2, 3, 8, 2, 4, 6], dtype=np.uint64)
        gaps = row_gaps(indptr, indices)
        # row heads stay absolute
        assert gaps[0] == 1 and gaps[3] == 0 and gaps[7] == 2
        assert np.array_equal(rows_from_gaps(indptr, gaps), indices)

    def test_gaps_shrink_value_range(self, rng):
        """The point of the transform: max gap << max id on sorted rows."""
        n = 1 << 16
        indices = np.sort(rng.integers(0, n, 5000).astype(np.uint64))
        indptr = np.array([0, 5000])
        gaps = row_gaps(indptr, indices)
        assert int(gaps[1:].max()) < n // 8

    def test_rejects_unsorted_rows(self):
        indptr = np.array([0, 2])
        with pytest.raises(ValidationError, match="sorted"):
            row_gaps(indptr, np.array([5, 3], dtype=np.uint64))

    def test_rejects_misaligned_indptr(self):
        with pytest.raises(ValidationError):
            row_gaps(np.array([0, 5]), np.array([1, 2], dtype=np.uint64))
        with pytest.raises(ValidationError):
            rows_from_gaps(np.array([0, 5]), np.array([1, 2], dtype=np.uint64))

    def test_empty_rows_and_graph(self):
        indptr = np.array([0, 0, 0, 0])
        empty = np.zeros(0, dtype=np.uint64)
        assert row_gaps(indptr, empty).shape == (0,)
        assert rows_from_gaps(indptr, empty).shape == (0,)

    def test_duplicate_neighbours_allowed(self):
        """Multigraph rows have zero gaps; they must survive."""
        indptr = np.array([0, 3])
        indices = np.array([4, 4, 4], dtype=np.uint64)
        gaps = row_gaps(indptr, indices)
        assert gaps.tolist() == [4, 0, 0]
        assert np.array_equal(rows_from_gaps(indptr, gaps), indices)

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_property_roundtrip(self, data):
        nrows = data.draw(st.integers(1, 8))
        rows = [
            sorted(data.draw(st.lists(st.integers(0, 1000), max_size=20)))
            for _ in range(nrows)
        ]
        indptr = np.cumsum([0] + [len(r) for r in rows])
        indices = np.asarray([x for r in rows for x in r], dtype=np.uint64)
        gaps = row_gaps(indptr, indices)
        assert np.array_equal(rows_from_gaps(indptr, gaps), indices)
