"""k²-tree: cell/row queries and traversal vs CSR reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.k2tree import K2Tree
from repro.csr.builder import build_csr_serial, ensure_sorted
from repro.errors import QueryError, ValidationError


def dedupe(src, dst):
    keys = (src.astype(np.uint64) << np.uint64(32)) | dst.astype(np.uint64)
    _, first = np.unique(keys, return_index=True)
    first.sort()
    return src[first], dst[first]


@pytest.fixture
def graph_pair(rng):
    n, m = 200, 1800
    src, dst = ensure_sorted(rng.integers(0, n, m), rng.integers(0, n, m))
    src, dst = dedupe(src, dst)
    return K2Tree(src, dst, n), build_csr_serial(src, dst, n)


class TestQueries:
    def test_has_edge_matches_csr(self, graph_pair, rng):
        tree, ref = graph_pair
        for _ in range(300):
            u = int(rng.integers(0, ref.num_nodes))
            v = int(rng.integers(0, ref.num_nodes))
            assert tree.has_edge(u, v) == ref.has_edge(u, v), (u, v)

    def test_neighbors_match_csr(self, graph_pair):
        tree, ref = graph_pair
        for u in range(0, ref.num_nodes, 11):
            assert tree.neighbors(u).tolist() == ref.neighbors(u).tolist(), u
            assert tree.degree(u) == ref.degree(u)

    def test_to_edges_roundtrip(self, graph_pair):
        tree, ref = graph_pair
        src, dst = tree.to_edges()
        rebuilt = build_csr_serial(src, dst, ref.num_nodes)
        assert rebuilt == ref

    def test_bounds(self, graph_pair):
        tree, _ = graph_pair
        with pytest.raises(QueryError):
            tree.has_edge(tree.num_nodes, 0)
        with pytest.raises(QueryError):
            tree.neighbors(-1)


class TestStructure:
    def test_duplicate_edges_collapse(self):
        tree = K2Tree(np.array([0, 0]), np.array([1, 1]), 4)
        assert tree.num_edges == 1

    def test_non_power_of_two_nodes(self, rng):
        n = 77  # pads to 128
        src, dst = dedupe(*ensure_sorted(rng.integers(0, n, 300), rng.integers(0, n, 300)))
        tree = K2Tree(src, dst, n)
        ref = build_csr_serial(src, dst, n)
        for u in range(0, n, 5):
            assert tree.neighbors(u).tolist() == ref.neighbors(u).tolist()

    def test_empty_and_single(self):
        empty = K2Tree(np.zeros(0, np.int64), np.zeros(0, np.int64), 10)
        assert empty.num_edges == 0
        assert empty.neighbors(3).size == 0
        assert empty.bits_per_edge() == 0.0
        single = K2Tree(np.array([0]), np.array([0]), 1)
        assert single.has_edge(0, 0)
        assert single.to_edges()[0].tolist() == [0]

    def test_validation(self):
        with pytest.raises(ValidationError):
            K2Tree(np.array([5]), np.array([0]), 5)
        with pytest.raises(ValidationError):
            K2Tree(np.array([0]), np.array([0, 1]), 5)

    def test_clustered_graph_compresses_well(self, rng):
        """Edges clustered near the diagonal: the k2-tree's sweet spot.
        It must land under the information-theoretic cost of the
        uncompressed CSR column array."""
        n = 1 << 12
        base = rng.integers(0, n - 64, 4000)
        src = base
        dst = base + rng.integers(0, 64, 4000)
        src, dst = dedupe(*ensure_sorted(src, dst))
        tree = K2Tree(src, dst, n)
        assert tree.bits_per_edge() < 32

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=60))
    def test_property_membership(self, edges):
        src = np.array([e[0] for e in edges], dtype=np.int64)
        dst = np.array([e[1] for e in edges], dtype=np.int64)
        tree = K2Tree(src, dst, 15)
        for u in range(15):
            for v in range(15):
                assert tree.has_edge(u, v) == ((u, v) in edges)
