"""Codec registry behaviour."""

import numpy as np
import pytest

from repro.bitpack.registry import (
    Codec,
    Encoded,
    available_codecs,
    best_codec,
    encoded_nbits,
    get_codec,
    register_codec,
)
from repro.errors import CodecError


class TestRegistryContents:
    def test_builtins_present(self):
        assert {"fixed", "varint", "elias_gamma", "elias_delta"} <= set(
            available_codecs()
        )

    def test_get_unknown_names_the_known(self):
        with pytest.raises(CodecError, match="fixed"):
            get_codec("nope")

    def test_every_codec_satisfies_protocol_and_roundtrips(self, rng):
        values = rng.integers(0, 5000, 300).astype(np.uint64)
        for name in available_codecs():
            codec = get_codec(name)
            assert isinstance(codec, Codec)
            enc = codec.encode(values)
            assert isinstance(enc, Encoded)
            assert enc.nbits >= 0
            assert np.array_equal(codec.decode(enc), values)


class TestRegisterCodec:
    def test_duplicate_rejected_then_replaceable(self):
        class Dummy:
            name = "fixed"

            def encode(self, values):
                raise NotImplementedError

            def decode(self, encoded):
                raise NotImplementedError

        with pytest.raises(CodecError, match="already registered"):
            register_codec(Dummy())
        original = get_codec("fixed")
        register_codec(Dummy(), replace=True)
        try:
            assert isinstance(get_codec("fixed"), Dummy)
        finally:
            register_codec(original, replace=True)


class TestBestCodec:
    def test_picks_smallest(self, rng):
        # near-uniform small values: fixed-width is optimal
        values = rng.integers(0, 8, 2000).astype(np.uint64)
        name, enc = best_codec(values)
        sizes = {n: encoded_nbits(n, values) for n in available_codecs()}
        assert enc.nbits == min(sizes.values())
        assert sizes[name] == enc.nbits

    def test_restricted_candidates(self, rng):
        values = rng.integers(0, 100, 50).astype(np.uint64)
        name, _ = best_codec(values, names=["varint"])
        assert name == "varint"

    def test_deterministic_tie_break(self):
        values = np.zeros(8, dtype=np.uint64)
        name1, _ = best_codec(values)
        name2, _ = best_codec(values)
        assert name1 == name2


class TestEncoded:
    def test_bits_per_value(self, rng):
        values = rng.integers(0, 2**10, 100).astype(np.uint64)
        enc = get_codec("fixed").encode(values)
        assert enc.bits_per_value() == pytest.approx(enc.nbits / 100)
        assert enc.nbytes == enc.bits.nbytes
