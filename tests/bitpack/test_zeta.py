"""Zeta-k codec tests: boundaries, adversarial values, row decode."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.registry import available_codecs, get_codec
from repro.bitpack.zeta import (
    ZetaCodec,
    zeta_decode,
    zeta_decode_rows,
    zeta_encode,
    zeta_value_nbits,
)
from repro.errors import CodecError

KS = [1, 2, 3, 4]


def _roundtrip(values, k):
    arr = np.asarray(values, dtype=np.uint64)
    bits = zeta_encode(arr, k)
    assert bits.nbits == int(zeta_value_nbits(arr, k).sum())
    out = zeta_decode(bits, arr.shape[0], k)
    assert np.array_equal(out, arr)


class TestScalarRoundtrip:
    @pytest.mark.parametrize("k", KS)
    def test_empty(self, k):
        _roundtrip([], k)

    @pytest.mark.parametrize("k", KS)
    def test_zeros_and_small(self, k):
        _roundtrip([0] * 17, k)
        _roundtrip(list(range(64)), k)

    @pytest.mark.parametrize("k", KS)
    def test_power_boundaries(self, k):
        # values straddling every shard boundary x = 2^(h*k)
        vals = []
        for h in range(1, 64 // k):
            x = 1 << (h * k)
            vals += [x - 2, x - 1, x]
        vals = [v for v in vals if 0 <= v <= 2**63 - 1]
        _roundtrip(vals, k)

    @pytest.mark.parametrize("k", KS)
    def test_max_value(self, k):
        _roundtrip([2**63 - 1, 0, 2**63 - 2], k)

    @pytest.mark.parametrize("k", KS)
    def test_domain_limit(self, k):
        with pytest.raises(CodecError):
            zeta_encode(np.array([2**63], dtype=np.uint64), k)

    @pytest.mark.parametrize("k", KS)
    def test_skewed_mixture(self, rng, k):
        exp = rng.integers(0, 62, 2000)
        vals = rng.integers(0, 2, 2000).astype(np.uint64) << exp.astype(np.uint64)
        _roundtrip(vals, k)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 4),
        st.lists(st.integers(0, 2**63 - 1), max_size=120),
    )
    def test_property(self, k, values):
        _roundtrip(values, k)


class TestRowDecode:
    @pytest.mark.parametrize("k", KS)
    def test_matches_scalar_on_random_rows(self, rng, k):
        vals = (rng.pareto(1.0, 3000) * 100).astype(np.uint64)
        bits = zeta_encode(vals, k)
        nbits = zeta_value_nbits(vals, k).astype(np.int64)
        pos = np.concatenate([[0], np.cumsum(nbits)])
        # random partition into rows, decoded in a shuffled order
        cuts = np.sort(rng.choice(3000, 40, replace=False))
        starts = np.concatenate([[0], cuts, [3000]])
        rows = rng.permutation(starts.shape[0] - 1)
        bit_starts = pos[starts[rows]]
        counts = (starts[1:] - starts[:-1])[rows]
        flat, offsets = zeta_decode_rows(bits, bit_starts, counts, k)
        for i, r in enumerate(rows):
            expect = vals[starts[r]:starts[r + 1]]
            assert np.array_equal(flat[offsets[i]:offsets[i + 1]], expect)

    @pytest.mark.parametrize("k", KS)
    def test_empty_and_single_rows(self, k):
        vals = np.array([5, 1, 0, 2**40], dtype=np.uint64)
        bits = zeta_encode(vals, k)
        nbits = zeta_value_nbits(vals, k).astype(np.int64)
        pos = np.concatenate([[0], np.cumsum(nbits)])
        bit_starts = np.array([0, pos[1], pos[1], pos[3]], dtype=np.int64)
        counts = np.array([1, 2, 0, 1], dtype=np.int64)
        flat, offsets = zeta_decode_rows(bits, bit_starts, counts, k)
        assert np.array_equal(flat, vals)
        assert np.array_equal(offsets, [0, 1, 3, 3, 4])

    def test_zero_rows(self):
        bits = zeta_encode(np.zeros(0, dtype=np.uint64), 2)
        flat, offsets = zeta_decode_rows(
            bits, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 2
        )
        assert flat.shape == (0,)
        assert np.array_equal(offsets, [0])


class TestRegistry:
    def test_zeta_codecs_registered(self):
        names = available_codecs()
        for k in (2, 3, 4):
            assert f"zeta{k}" in names

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_codec_protocol_roundtrip(self, rng, k):
        codec = get_codec(f"zeta{k}")
        assert isinstance(codec, ZetaCodec)
        vals = (rng.pareto(1.2, 500) * 40).astype(np.uint64)
        enc = codec.encode(vals)
        assert enc.codec == f"zeta{k}"
        assert np.array_equal(codec.decode(enc), vals)
