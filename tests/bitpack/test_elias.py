"""Elias gamma/delta universal code tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.elias import (
    EliasDeltaCodec,
    EliasGammaCodec,
    delta_decode,
    delta_encode,
    gamma_decode,
    gamma_encode,
)
from repro.errors import CodecError, ValidationError


class TestGammaWireFormat:
    def test_known_codewords(self):
        # gamma(1)=1, gamma(2)=010, gamma(3)=011, gamma(4)=00100
        bits = gamma_encode(np.array([1], dtype=np.uint64))
        assert bits.to_bits().tolist() == [1]
        bits = gamma_encode(np.array([2], dtype=np.uint64))
        assert bits.to_bits().tolist() == [0, 1, 0]
        bits = gamma_encode(np.array([4], dtype=np.uint64))
        assert bits.to_bits().tolist() == [0, 0, 1, 0, 0]

    def test_length_is_2floorlog_plus_1(self):
        for v in (1, 2, 3, 7, 8, 1023, 1024):
            bits = gamma_encode(np.array([v], dtype=np.uint64))
            assert bits.nbits == 2 * int(np.floor(np.log2(v))) + 1


class TestRoundtrips:
    @pytest.mark.parametrize("codec_pair", [(gamma_encode, gamma_decode), (delta_encode, delta_decode)])
    def test_stream_roundtrip(self, codec_pair, rng):
        enc, dec = codec_pair
        values = rng.integers(1, 1 << 30, 500).astype(np.uint64)
        assert np.array_equal(dec(enc(values), 500), values)

    def test_large_values(self):
        values = np.array([1, 2**40, 2**63 - 1], dtype=np.uint64)
        assert np.array_equal(gamma_decode(gamma_encode(values), 3), values)
        assert np.array_equal(delta_decode(delta_encode(values), 3), values)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 2**32), max_size=60))
    def test_property_gamma(self, values):
        arr = np.asarray(values, dtype=np.uint64)
        assert np.array_equal(gamma_decode(gamma_encode(arr), arr.size), arr)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 2**32), max_size=60))
    def test_property_delta(self, values):
        arr = np.asarray(values, dtype=np.uint64)
        assert np.array_equal(delta_decode(delta_encode(arr), arr.size), arr)


class TestValidation:
    def test_zero_rejected_at_wire_level(self):
        with pytest.raises(ValidationError):
            gamma_encode(np.array([0], dtype=np.uint64))

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            delta_encode(np.array([-1]))

    def test_corrupt_stream(self):
        from repro.bitpack.bitarray import BitArray

        # 70 leading zeros: unary run longer than any valid gamma length
        corrupt = BitArray.from_bits([0] * 70 + [1])
        with pytest.raises(CodecError):
            gamma_decode(corrupt, 1)


class TestCodecWrappers:
    @pytest.mark.parametrize("cls,name", [(EliasGammaCodec, "elias_gamma"), (EliasDeltaCodec, "elias_delta")])
    def test_zero_shift(self, cls, name, rng):
        """Wrappers shift +1 so zeros (common gaps) are encodable."""
        codec = cls()
        values = rng.integers(0, 1000, 300).astype(np.uint64)
        values[:10] = 0
        enc = codec.encode(values)
        assert enc.codec == name
        assert np.array_equal(codec.decode(enc), values)

    def test_delta_beats_gamma_for_large_values(self, rng):
        values = rng.integers(2**20, 2**30, 500).astype(np.uint64)
        g = EliasGammaCodec().encode(values).nbits
        d = EliasDeltaCodec().encode(values).nbits
        assert d < g

    def test_foreign_payload_rejected(self):
        enc = EliasGammaCodec().encode(np.array([1], dtype=np.uint64))
        with pytest.raises(CodecError):
            EliasDeltaCodec().decode(enc)
