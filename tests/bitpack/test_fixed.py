"""Fixed-width packing — the codec of [7] — including layout agreement
between the vectorised kernels and the scalar BitArray accessors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.bitarray import BitArray
from repro.bitpack.fixed import (
    FixedWidthCodec,
    pack_fixed,
    packed_nbits,
    read_field,
    unpack_fixed,
    unpack_slice,
)
from repro.errors import CodecError, FieldOverflowError, ValidationError


class TestPackFixed:
    def test_roundtrip_auto_width(self, rng):
        values = rng.integers(0, 1 << 19, 5000).astype(np.uint64)
        bits = pack_fixed(values)
        assert bits.nbits == 5000 * 19
        assert np.array_equal(unpack_fixed(bits, 5000, 19), values)

    @pytest.mark.parametrize("width", [1, 7, 8, 9, 31, 32, 33, 63, 64])
    def test_roundtrip_every_tricky_width(self, width, rng):
        hi = (1 << width) - 1
        values = rng.integers(0, hi, 257, dtype=np.uint64, endpoint=True)
        bits = pack_fixed(values, width)
        assert np.array_equal(unpack_fixed(bits, 257, width), values)

    def test_zero_values_need_one_bit(self):
        bits = pack_fixed(np.zeros(10, dtype=np.uint64))
        assert bits.nbits == 10

    def test_empty(self):
        bits = pack_fixed(np.zeros(0, dtype=np.uint64))
        assert bits.nbits == 0
        assert unpack_fixed(bits, 0, 5).shape == (0,)

    def test_overflow_detected(self):
        with pytest.raises(FieldOverflowError):
            pack_fixed(np.array([8], dtype=np.uint64), 3)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            pack_fixed(np.array([-1, 2]))

    def test_rejects_floats_and_2d(self):
        with pytest.raises(ValidationError):
            pack_fixed(np.array([1.5]))
        with pytest.raises(ValidationError):
            pack_fixed(np.zeros((2, 2), dtype=np.int64))

    def test_layout_matches_scalar_writes(self, rng):
        """The vectorised pack and BitArray.write_uint must address the
        same bit positions — the query path depends on it."""
        values = rng.integers(0, 1 << 13, 50).astype(np.uint64)
        vec = pack_fixed(values, 13)
        scalar = BitArray.zeros(50 * 13)
        for i, v in enumerate(values.tolist()):
            scalar.write_uint(i * 13, 13, v)
        assert vec == scalar

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 2**48 - 1), min_size=0, max_size=120),
        st.integers(48, 64),
    )
    def test_property_roundtrip(self, values, width):
        arr = np.asarray(values, dtype=np.uint64)
        bits = pack_fixed(arr, width)
        assert np.array_equal(unpack_fixed(bits, arr.size, width), arr)


class TestUnpackSliceAndReadField:
    def test_slice_matches_source(self, rng):
        values = rng.integers(0, 1 << 11, 400).astype(np.uint64)
        bits = pack_fixed(values, 11)
        assert np.array_equal(unpack_slice(bits, 11, 100, 37), values[100:137])
        assert np.array_equal(unpack_slice(bits, 11, 0, 0), values[:0])

    def test_read_field_scalar(self, rng):
        values = rng.integers(0, 1 << 21, 64).astype(np.uint64)
        bits = pack_fixed(values, 21)
        for i in (0, 1, 31, 63):
            assert read_field(bits, 21, i) == values[i]

    def test_decode_past_end(self):
        bits = pack_fixed(np.arange(4, dtype=np.uint64), 3)
        with pytest.raises(CodecError):
            unpack_fixed(bits, 5, 3)
        with pytest.raises(ValidationError):
            unpack_slice(bits, 3, -1, 2)

    def test_bad_widths(self):
        bits = pack_fixed(np.arange(4, dtype=np.uint64), 3)
        with pytest.raises(ValidationError):
            unpack_fixed(bits, 1, 0)
        with pytest.raises(ValidationError):
            unpack_fixed(bits, 1, 65)
        with pytest.raises(ValidationError):
            unpack_fixed(bits, -1, 3)

    def test_packed_nbits(self):
        assert packed_nbits(10, 7) == 70


class TestFixedWidthCodec:
    def test_encode_decode(self, rng):
        codec = FixedWidthCodec()
        values = rng.integers(0, 1000, 200).astype(np.uint64)
        enc = codec.encode(values)
        assert enc.codec == "fixed"
        assert enc.meta["width"] == 10
        assert np.array_equal(codec.decode(enc), values)

    def test_explicit_width(self):
        codec = FixedWidthCodec(width=16)
        enc = codec.encode(np.array([1, 2], dtype=np.uint64))
        assert enc.meta["width"] == 16

    def test_decode_rejects_foreign_payload(self):
        from repro.bitpack.registry import get_codec

        enc = get_codec("varint").encode(np.array([1], dtype=np.uint64))
        with pytest.raises(CodecError):
            FixedWidthCodec().decode(enc)
