"""Wavelet tree: access/rank/range queries vs brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.wavelet import WaveletTree
from repro.errors import ValidationError


@pytest.fixture
def sequence(rng):
    return rng.integers(0, 23, 1500)


@pytest.fixture
def tree(sequence):
    return WaveletTree(sequence)


class TestAccess:
    def test_matches_sequence(self, tree, sequence):
        for i in range(0, len(sequence), 13):
            assert tree.access(i) == sequence[i]

    def test_bounds(self, tree):
        with pytest.raises(ValidationError):
            tree.access(len(tree))
        with pytest.raises(ValidationError):
            tree.access(-1)


class TestRank:
    def test_matches_counting(self, tree, sequence, rng):
        for _ in range(200):
            s = int(rng.integers(0, 23))
            p = int(rng.integers(0, len(sequence) + 1))
            assert tree.rank(s, p) == int((sequence[:p] == s).sum()), (s, p)

    def test_absent_symbol(self, sequence):
        tree = WaveletTree(sequence, sigma=64)
        assert tree.rank(60, len(sequence)) == 0

    def test_symbol_bounds(self, tree):
        with pytest.raises(ValidationError):
            tree.rank(23, 0)
        with pytest.raises(ValidationError):
            tree.rank(-1, 0)


class TestRanges:
    def test_count_range(self, tree, sequence):
        assert tree.count_range(100, 900, 5) == int((sequence[100:900] == 5).sum())

    def test_distinct_in_range(self, tree, sequence):
        lo, hi = 37, 1200
        got = tree.distinct_in_range(lo, hi)
        vals, counts = np.unique(sequence[lo:hi], return_counts=True)
        assert got == list(zip(vals.tolist(), counts.tolist()))

    def test_empty_range(self, tree):
        assert tree.distinct_in_range(10, 10) == []
        assert tree.count_range(10, 10, 0) == 0

    def test_invalid_range(self, tree):
        with pytest.raises(ValidationError):
            tree.count_range(5, 3, 0)


class TestEdgeCases:
    def test_unary_alphabet(self):
        tree = WaveletTree(np.zeros(7, dtype=np.int64), sigma=1)
        assert tree.access(6) == 0
        assert tree.rank(0, 7) == 7
        assert tree.distinct_in_range(0, 7) == [(0, 7)]

    def test_empty_sequence(self):
        tree = WaveletTree(np.zeros(0, dtype=np.int64), sigma=4)
        assert len(tree) == 0
        assert tree.rank(2, 0) == 0

    def test_power_of_two_alphabet(self, rng):
        seq = rng.integers(0, 16, 300)
        tree = WaveletTree(seq, sigma=16)
        assert tree.bits_per_symbol == 4
        for i in range(0, 300, 17):
            assert tree.access(i) == seq[i]

    def test_validation(self):
        with pytest.raises(ValidationError):
            WaveletTree(np.array([3]), sigma=3)
        with pytest.raises(ValidationError):
            WaveletTree(np.array([-1]))
        with pytest.raises(ValidationError):
            WaveletTree(np.array([1.5]))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 30), max_size=200), st.data())
    def test_property(self, raw, data):
        seq = np.asarray(raw, dtype=np.int64)
        tree = WaveletTree(seq, sigma=31)
        if raw:
            i = data.draw(st.integers(0, len(raw) - 1))
            assert tree.access(i) == raw[i]
        s = data.draw(st.integers(0, 30))
        p = data.draw(st.integers(0, len(raw)))
        assert tree.rank(s, p) == raw[:p].count(s)

    def test_memory_reported(self, tree):
        assert tree.memory_bytes() > 0
