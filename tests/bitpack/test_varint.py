"""LEB128 varint codec tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.varint import (
    VarintCodec,
    varint_decode,
    varint_encode,
    varint_nbytes,
)
from repro.errors import CodecError, ValidationError


class TestEncodedLengths:
    @pytest.mark.parametrize(
        "value,nbytes",
        [(0, 1), (127, 1), (128, 2), (2**14 - 1, 2), (2**14, 3), (2**63, 10)],
    )
    def test_boundaries(self, value, nbytes):
        assert varint_nbytes(np.array([value], dtype=np.uint64))[0] == nbytes
        assert varint_encode(np.array([value], dtype=np.uint64)).shape[0] == nbytes

    def test_wire_format_example(self):
        # 300 = 0b10_0101100 -> AC 02 (LEB128 reference vector)
        assert varint_encode(np.array([300], dtype=np.uint64)).tolist() == [0xAC, 0x02]


class TestRoundtrip:
    def test_mixed_magnitudes(self, rng):
        exponents = rng.integers(0, 63, 3000)
        values = (rng.integers(0, 2, 3000).astype(np.uint64) << exponents.astype(np.uint64))
        stream = varint_encode(values)
        assert np.array_equal(varint_decode(stream), values)
        assert np.array_equal(varint_decode(stream, 3000), values)

    def test_empty(self):
        assert varint_encode(np.zeros(0, dtype=np.uint64)).shape == (0,)
        assert varint_decode(np.zeros(0, dtype=np.uint8)).shape == (0,)

    def test_uint64_max(self):
        v = np.array([2**64 - 1], dtype=np.uint64)
        assert np.array_equal(varint_decode(varint_encode(v)), v)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 2**64 - 1), max_size=150))
    def test_property(self, values):
        arr = np.asarray(values, dtype=np.uint64)
        assert np.array_equal(varint_decode(varint_encode(arr)), arr)


class TestFailureModes:
    def test_truncated_stream(self):
        stream = varint_encode(np.array([300], dtype=np.uint64))[:-1]
        with pytest.raises(CodecError, match="truncated"):
            varint_decode(stream)

    def test_count_mismatch(self):
        stream = varint_encode(np.array([1, 2, 3], dtype=np.uint64))
        with pytest.raises(CodecError, match="expected 2"):
            varint_decode(stream, 2)
        with pytest.raises(CodecError):
            varint_decode(np.zeros(0, dtype=np.uint8), 1)

    def test_overlong_run_rejected(self):
        stream = np.array([0x80] * 11 + [0x00], dtype=np.uint8)
        with pytest.raises(CodecError, match="10 bytes"):
            varint_decode(stream)

    def test_rejects_negative_input(self):
        with pytest.raises(ValidationError):
            varint_encode(np.array([-1]))

    def test_rejects_2d_stream(self):
        with pytest.raises(ValidationError):
            varint_decode(np.zeros((2, 2), dtype=np.uint8))


class TestVarintCodec:
    def test_registry_roundtrip(self, rng):
        codec = VarintCodec()
        values = rng.integers(0, 10**6, 500).astype(np.uint64)
        enc = codec.encode(values)
        assert enc.codec == "varint"
        assert np.array_equal(codec.decode(enc), values)

    def test_skewed_beats_fixed_on_size(self, rng):
        """Tiny values with one huge outlier: varint wins, which is the
        premise of the codec ablation."""
        from repro.bitpack.fixed import FixedWidthCodec

        values = rng.integers(0, 4, 1000).astype(np.uint64)
        values[0] = 2**40
        assert VarintCodec().encode(values).nbits < FixedWidthCodec().encode(values).nbits
