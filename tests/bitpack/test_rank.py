"""RankBitVector: rank correctness across superblock boundaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.rank import RankBitVector
from repro.errors import ValidationError
from repro.utils import require


class TestConstruction:
    def test_from_bits_roundtrip(self, rng):
        bits = rng.integers(0, 2, 777).astype(np.uint8)
        rv = RankBitVector.from_bits(bits)
        assert np.array_equal(rv.to_bits(), bits)
        assert rv.total_ones == bits.sum()

    def test_from_positions(self):
        rv = RankBitVector.from_positions([0, 5, 9], 10)
        assert rv.to_bits().tolist() == [1, 0, 0, 0, 0, 1, 0, 0, 0, 1]

    def test_validation(self):
        with pytest.raises(ValidationError):
            RankBitVector.from_bits(np.array([0, 2]))
        with pytest.raises(ValidationError):
            RankBitVector.from_positions([10], 10)
        with pytest.raises(ValidationError):
            RankBitVector.from_bits(np.zeros((2, 2), dtype=np.uint8))

    def test_pad_bits_ignored(self):
        # construct from a buffer with garbage pad bits
        rv = RankBitVector(np.array([0xFF], dtype=np.uint8), 3)
        assert rv.total_ones == 3
        assert rv.rank1(3) == 3


class TestRank:
    def test_matches_cumsum_everywhere(self, rng):
        bits = rng.integers(0, 2, 3000).astype(np.uint8)
        rv = RankBitVector.from_bits(bits)
        cum = np.concatenate(([0], np.cumsum(bits)))
        for pos in range(0, 3001, 7):
            assert rv.rank1(pos) == cum[pos], pos
            assert rv.rank0(pos) == pos - cum[pos]

    @pytest.mark.parametrize("pos", [0, 1, 7, 8, 511, 512, 513, 1024])
    def test_superblock_boundaries(self, pos, rng):
        bits = np.ones(1100, dtype=np.uint8)
        rv = RankBitVector.from_bits(bits)
        assert rv.rank1(pos) == pos

    def test_range(self, rng):
        bits = rng.integers(0, 2, 600).astype(np.uint8)
        rv = RankBitVector.from_bits(bits)
        assert rv.rank1_range(100, 400) == bits[100:400].sum()
        assert rv.rank1_range(5, 5) == 0

    def test_bounds(self):
        rv = RankBitVector.from_bits(np.zeros(8, dtype=np.uint8))
        with pytest.raises(ValidationError):
            rv.rank1(9)
        with pytest.raises(ValidationError):
            rv.get(8)
        with pytest.raises(ValidationError):
            rv.rank1_range(4, 2)

    def test_empty(self):
        rv = RankBitVector.from_bits(np.zeros(0, dtype=np.uint8))
        assert rv.rank1(0) == 0
        assert len(rv) == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1), max_size=1200), st.data())
    def test_property(self, bits, data):
        rv = RankBitVector.from_bits(np.asarray(bits, dtype=np.uint8))
        pos = data.draw(st.integers(0, len(bits)))
        assert rv.rank1(pos) == sum(bits[:pos])

    def test_memory_overhead_bounded(self, rng):
        bits = rng.integers(0, 2, 100_000).astype(np.uint8)
        rv = RankBitVector.from_bits(bits)
        payload = len(bits) / 8
        assert rv.memory_bytes() < payload * 1.2  # <=20% overhead
