"""BitArray / BitWriter / BitReader storage-layer tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.bitarray import BitArray, BitReader, BitWriter, blit_bits
from repro.errors import CodecError, ValidationError


class TestBitArrayBasics:
    def test_zeros(self):
        ba = BitArray.zeros(17)
        assert len(ba) == 17
        assert ba.nbytes == 3
        assert all(ba.get_bit(i) == 0 for i in range(17))

    def test_from_bits_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 0, 1, 1]
        ba = BitArray.from_bits(bits)
        assert ba.to_bits().tolist() == bits

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValidationError):
            BitArray.from_bits([0, 2])

    def test_buffer_too_small(self):
        with pytest.raises(ValidationError):
            BitArray(np.zeros(1, dtype=np.uint8), 9)

    def test_equality_ignores_pad_bits(self):
        a = BitArray(np.array([0b1111_1111], dtype=np.uint8), 4)
        b = BitArray(np.array([0b0000_1111], dtype=np.uint8), 4)
        assert a == b
        c = BitArray(np.array([0b0000_0111], dtype=np.uint8), 4)
        assert a != c

    def test_equality_needs_same_length(self):
        assert BitArray.zeros(3) != BitArray.zeros(4)


class TestFieldAccess:
    def test_write_read_roundtrip_across_byte_boundary(self):
        ba = BitArray.zeros(64)
        ba.write_uint(5, 13, 0b1010101010101)
        assert ba.read_uint(5, 13) == 0b1010101010101
        # neighbours untouched
        assert ba.read_uint(0, 5) == 0
        assert ba.read_uint(18, 10) == 0

    def test_write_overwrites_in_place(self):
        ba = BitArray.zeros(16)
        ba.write_uint(3, 8, 0xFF)
        ba.write_uint(3, 8, 0x0F)
        assert ba.read_uint(3, 8) == 0x0F

    def test_64_bit_fields(self):
        ba = BitArray.zeros(130)
        value = (1 << 64) - 1
        ba.write_uint(3, 64, value)
        assert ba.read_uint(3, 64) == value

    def test_value_too_wide(self):
        ba = BitArray.zeros(16)
        with pytest.raises(CodecError):
            ba.write_uint(0, 4, 16)

    def test_out_of_range_access(self):
        ba = BitArray.zeros(8)
        with pytest.raises(ValidationError):
            ba.read_uint(4, 8)
        with pytest.raises(ValidationError):
            ba.write_uint(-1, 4, 0)
        with pytest.raises(ValidationError):
            ba.get_bit(8)

    def test_width_bounds(self):
        ba = BitArray.zeros(128)
        with pytest.raises(ValidationError):
            ba.read_uint(0, 0)
        with pytest.raises(ValidationError):
            ba.read_uint(0, 65)

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_random_fields_roundtrip(self, data):
        ba = BitArray.zeros(256)
        writes = []
        pos = 0
        while pos < 200:
            width = data.draw(st.integers(1, 33))
            value = data.draw(st.integers(0, (1 << width) - 1))
            ba.write_uint(pos, width, value)
            writes.append((pos, width, value))
            pos += width
        for pos, width, value in writes:
            assert ba.read_uint(pos, width) == value


class TestConcat:
    @pytest.mark.parametrize("la,lb", [(0, 5), (8, 8), (3, 11), (13, 29)])
    def test_concat_bitwise(self, la, lb, rng):
        a_bits = rng.integers(0, 2, la).tolist()
        b_bits = rng.integers(0, 2, lb).tolist()
        got = BitArray.from_bits(a_bits).concat(BitArray.from_bits(b_bits))
        assert got.to_bits().tolist() == a_bits + b_bits


class TestBlitBits:
    @pytest.mark.parametrize("pos", [0, 1, 7, 8, 13, 64])
    def test_blit_any_alignment(self, pos, rng):
        src_bits = rng.integers(0, 2, 75).tolist()
        src = BitArray.from_bits(src_bits)
        dst = BitArray.zeros(pos + 75 + 9)
        blit_bits(dst, pos, src)
        got = dst.to_bits().tolist()
        assert got[pos : pos + 75] == src_bits
        assert sum(got[:pos]) == 0 and sum(got[pos + 75 :]) == 0

    def test_blit_empty_is_noop(self):
        dst = BitArray.zeros(8)
        blit_bits(dst, 3, BitArray.zeros(0))
        assert dst.to_bits().sum() == 0

    def test_blit_out_of_bounds(self):
        with pytest.raises(ValidationError):
            blit_bits(BitArray.zeros(8), 5, BitArray.from_bits([1, 1, 1, 1]))

    def test_blit_exact_end_of_buffer_unaligned(self):
        # hi-byte spill at the very end of the destination buffer
        src = BitArray.from_bits([1] * 13)
        dst = BitArray.zeros(16)
        blit_bits(dst, 3, src)
        assert dst.to_bits().tolist() == [0, 0, 0] + [1] * 13


class TestBitStreams:
    def test_writer_reader_roundtrip(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0xFFFF, 16)
        w.write(0, 1)
        w.write(42, 31)
        bits = w.getvalue()
        assert bits.nbits == 51
        r = BitReader(bits)
        assert r.read(3) == 0b101
        assert r.read(16) == 0xFFFF
        assert r.read(1) == 0
        assert r.read(31) == 42
        assert r.at_end()

    def test_writer_rejects_overflow(self):
        w = BitWriter()
        with pytest.raises(CodecError):
            w.write(8, 3)

    def test_unary(self):
        w = BitWriter()
        w.write_unary(0)
        w.write_unary(5)
        w.write_unary(2)
        r = BitReader(w.getvalue())
        assert [r.read_unary() for _ in range(3)] == [0, 5, 2]

    def test_unary_past_end(self):
        w = BitWriter()
        w.write(0, 3)  # three zero bits, never terminated
        r = BitReader(w.getvalue())
        with pytest.raises(CodecError):
            r.read_unary()

    def test_write_bitarray(self, rng):
        payload = rng.integers(0, 2, 130).tolist()
        w = BitWriter()
        w.write(1, 1)
        w.write_bitarray(BitArray.from_bits(payload))
        got = w.getvalue().to_bits().tolist()
        assert got == [1] + payload

    def test_reader_remaining(self):
        r = BitReader(BitArray.zeros(10), pos=4)
        assert r.remaining == 6
        with pytest.raises(ValidationError):
            BitReader(BitArray.zeros(4), pos=5)
