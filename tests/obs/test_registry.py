"""Unit tests for the metrics registry, its primitives, and adapters."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ReproError, ValidationError
from repro.obs import (
    Counter,
    Gauge,
    Log2Histogram,
    MetricsRegistry,
    stats_dict,
    to_jsonable,
)


class TestPrimitives:
    def test_counter_increments(self):
        c = Counter("reqs")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ReproError, match="only increase"):
            Counter("reqs").inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_buckets_powers_of_two(self):
        h = Log2Histogram("wait")
        for v in (1, 2, 3, 4, 1000):
            h.observe(v)
        # bucket b covers (2**(b-1), 2**b]; <=1 lands in bucket 0
        assert h.to_dict() == {0: 1, 1: 1, 2: 2, 10: 1}
        assert h.count == 5

    def test_histogram_rejects_nan(self):
        h = Log2Histogram("wait")
        with pytest.raises(ValidationError, match="NaN is not a sample"):
            h.observe(float("nan"))
        assert h.count == 0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_cross_kind_name_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValidationError, match="already exists as a counter"):
            reg.gauge("x")
        with pytest.raises(ValidationError, match="already exists as a counter"):
            reg.histogram("x")

    def test_snapshot_merges_primitives_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        reg.gauge("depth").set(7)
        reg.histogram("wait").observe(3)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"]["b"] == 2
        assert snap["gauges"]["depth"] == 7.0
        assert snap["histograms"]["wait"] == {2: 1}

    def test_sources_pulled_and_none_omitted(self):
        reg = MetricsRegistry()
        reg.register_source("live", lambda: {"n": np.int64(3)})
        reg.register_source("absent", lambda: None)
        snap = reg.snapshot()
        assert snap["live"] == {"n": 3}
        assert "absent" not in snap

    def test_duplicate_source_rejected(self):
        reg = MetricsRegistry()
        reg.register_source("s", dict)
        with pytest.raises(ValidationError, match="already registered"):
            reg.register_source("s", dict)

    def test_source_must_be_callable(self):
        with pytest.raises(ReproError, match="callable"):
            MetricsRegistry().register_source("s", 42)

    def test_empty_registry_snapshot_is_empty(self):
        assert MetricsRegistry().snapshot() == {}


@dataclasses.dataclass(frozen=True)
class _Stats:
    hits: int
    rate: float
    samples: np.ndarray


class TestAdapters:
    def test_to_jsonable_numpy(self):
        assert to_jsonable(np.int32(4)) == 4
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_to_jsonable_dataclass_recurses(self):
        s = _Stats(hits=np.int64(3), rate=0.5, samples=np.array([1.0]))
        assert to_jsonable(s) == {"hits": 3, "rate": 0.5, "samples": [1.0]}

    def test_to_jsonable_dict_keys_coerced(self):
        assert to_jsonable({3: np.int64(1)}) == {"3": 1}

    def test_to_jsonable_prefers_to_dict(self):
        class Obj:
            def to_dict(self):
                return {"k": np.int64(9)}

        assert to_jsonable(Obj()) == {"k": 9}

    def test_stats_dict_requires_dict_shape(self):
        assert stats_dict(_Stats(1, 2.0, np.array([])))["hits"] == 1
        with pytest.raises(TypeError, match="does not flatten"):
            stats_dict([1, 2, 3])
