"""The acceptance trace: one routed request across a 4x2 cluster.

ISSUE criterion: a single traced request through the replicated
cluster must produce the span chain enqueue -> coalesce/dispatch ->
shard fan-out -> worker dispatch -> kernel decode with parent links
intact, and the summed child :class:`Cost` of the request's subtree
must equal the cost the request was actually charged — i.e. what a
direct :class:`QueryEngine` run of the same key on the owning shard
store declares.
"""

import numpy as np
import pytest

from repro.csr.builder import ensure_sorted
from repro.obs import subtree_cost, subtree_spans
from repro.parallel import SerialExecutor
from repro.parallel.cost import Cost
from repro.query import QueryEngine
from repro.serve import DONE, ManualClock, NeighborsRequest, ServerConfig, open_server
from repro.stores import open_store


def _edges(seed=7, n=64, m=500):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    src, dst = ensure_sorted(src, dst)
    return src, dst, n


def _cluster(workers=4, replicas=2, **overrides):
    src, dst, n = _edges()
    clock = ManualClock()
    config = ServerConfig(
        store_kind="packed",
        edges=(src, dst, n),
        workers=workers,
        replicas=replicas,
        cluster=True,
        obs=True,
        **overrides,
    )
    return open_server(config, clock=clock), clock


def _direct_cost(store, node):
    charged = []
    ex = SerialExecutor()
    ex.cost_observer = lambda label, cost: charged.append(cost)
    QueryEngine(store, ex).neighbors([node])
    total = Cost.zero()
    for c in charged:
        total = total + c
    return total


class TestAcceptanceTrace:
    def test_routed_request_span_chain_and_cost(self):
        router, clock = _cluster()
        slot = router.submit(NeighborsRequest(node=5))
        router.drain()
        assert slot.status == DONE

        spans = router.tracer.spans()
        by_id = {s.span_id: s for s in spans}
        named = {}
        for s in spans:
            named.setdefault(s.name, []).append(s)

        # the root: one traced router request
        (root,) = named["request"]
        assert root.layer == "router"
        assert root.parent_id is None
        assert root.ticket == slot.request.ticket

        # enqueue (queue wait in the router's coalescer) under the root
        (enq,) = named["enqueue"]
        assert enq.layer == "router"
        assert enq.parent_id == root.span_id

        # the scatter dispatch under the root
        (scatter,) = [s for s in named["dispatch"] if s.layer == "router"]
        assert scatter.parent_id == root.span_id
        assert scatter.meta["shards"] >= 1

        # shard fan-out: sub spans under the scatter
        subs = named["sub"]
        assert subs and all(s.layer == "router" for s in subs)
        assert all(s.parent_id == scatter.span_id for s in subs)
        assert all("shard" in s.meta and "worker" in s.meta for s in subs)

        # each sub runs the worker's inner dispatch, which runs kernels
        sub_ids = {s.span_id for s in subs}
        worker_dispatch = [s for s in named["dispatch"] if s.layer == "serve"]
        assert worker_dispatch
        assert all(s.parent_id in sub_ids for s in worker_dispatch)
        kernels = named["kernel:neighbors"]
        assert kernels
        dispatch_ids = {s.span_id for s in worker_dispatch}
        assert all(k.parent_id in dispatch_ids for k in kernels)
        assert all(k.layer == "query" for k in kernels)

        # parent links all resolve inside the trace
        for s in subtree_spans(spans, root.span_id):
            if s.parent_id is not None:
                assert s.parent_id in by_id

        # summed child Cost == what the owning shard's store charges
        # for the same key served directly
        shard = subs[0].meta["shard"]
        store = router.by_shard[shard][0].server.engine.store
        assert subtree_cost(spans, root.span_id) == _direct_cost(store, 5)

    def test_every_worker_shares_one_tracer(self):
        router, _ = _cluster()
        for group in router.by_shard.values():
            for worker in group:
                assert worker.server.tracer is router.tracer

    def test_inner_servers_never_open_their_own_roots(self):
        router, clock = _cluster()
        for i in range(6):
            clock.advance_to(i * 1000.0)
            router.submit(NeighborsRequest(node=i))
            router.pump(clock())
        router.drain()
        roots = [s for s in router.tracer.spans() if s.parent_id is None]
        assert all(s.name == "request" and s.layer == "router"
                   for s in roots)
        assert len(roots) == 6

    def test_hedge_wait_recorded_under_scatter(self):
        router, clock = _cluster(hedge_percentile=50, max_batch_size=1)
        for i in range(40):
            clock.advance_to(i * 2000.0)
            router.submit(NeighborsRequest(node=i % 64))
            router.pump(clock())
        router.drain()
        hedges = [s for s in router.tracer.spans() if s.name == "hedge-wait"]
        if router.cluster_stats().hedges_launched == 0:
            pytest.skip("no hedges fired for this workload")
        assert hedges
        dispatch_ids = {s.span_id for s in router.tracer.spans()
                        if s.name == "dispatch" and s.layer == "router"}
        assert all(h.parent_id in dispatch_ids for h in hedges)
        assert all(h.layer == "router" for h in hedges)

    def test_registry_snapshot_includes_cluster_source(self):
        router, clock = _cluster()
        router.submit(NeighborsRequest(node=3))
        router.drain()
        snap = router.registry.snapshot()
        assert snap["router.serve"]["completed"] == 1
        assert snap["router.cluster"]["shards"] == 2
        assert snap["router.trace"]["finished_spans"] >= 1
