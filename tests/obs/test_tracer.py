"""Unit tests for the span tracer: lifecycle, stack, ring, sampling."""

import pytest

from repro.errors import ReproError
from repro.obs import NULL_TRACER, ObsConfig, Span, Tracer
from repro.parallel.cost import Cost


def make_tracer(**kwargs):
    ticks = iter(range(10_000))

    def clock():
        return float(next(ticks))

    return Tracer(ObsConfig(**kwargs), clock=clock)


class TestLifecycle:
    def test_begin_end_commits_span(self):
        tr = make_tracer()
        sid = tr.begin("request", "serve", ticket=7)
        assert tr.spans() == []  # still open
        tr.end(sid)
        (span,) = tr.spans()
        assert span.name == "request"
        assert span.layer == "serve"
        assert span.ticket == 7
        assert span.parent_id is None
        assert span.duration_ns == 1.0

    def test_end_is_idempotent(self):
        tr = make_tracer()
        sid = tr.begin("a", "serve")
        tr.end(sid)
        tr.end(sid)
        tr.end(999)  # unknown id is a no-op too
        assert len(tr.spans()) == 1

    def test_explicit_stamps_beat_clock(self):
        tr = make_tracer()
        sid = tr.begin("a", "serve", start_ns=100.0)
        tr.end(sid, end_ns=250.0)
        (span,) = tr.spans()
        assert span.start_ns == 100.0
        assert span.end_ns == 250.0
        assert span.duration_ns == 150.0

    def test_open_span_has_zero_duration(self):
        span = Span(span_id=1, name="x", layer="serve", start_ns=5.0)
        assert span.duration_ns == 0.0

    def test_record_is_analytic(self):
        tr = make_tracer()
        sid = tr.record("enqueue", "serve", start_ns=10.0, end_ns=30.0,
                        ticket=3, cost=Cost(reads=2))
        (span,) = tr.spans()
        assert span.span_id == sid
        assert span.duration_ns == 20.0
        assert span.cost.reads == 2

    def test_to_dict_shape(self):
        tr = make_tracer()
        sid = tr.begin("kernel:neighbors", "query", meta={"keys": 4})
        tr.add_cost(sid, Cost(reads=4, bit_ops=10))
        tr.end(sid)
        d = tr.spans()[0].to_dict()
        assert d["name"] == "kernel:neighbors"
        assert d["parent_id"] is None
        assert d["cost"]["reads"] == 4
        assert d["cost"]["bit_ops"] == 10
        assert d["meta"] == {"keys": 4}


class TestStackParenting:
    def test_span_block_parents_nested(self):
        tr = make_tracer()
        with tr.span("dispatch", "serve") as outer:
            with tr.span("kernel:neighbors", "query") as inner:
                assert tr.current() == inner
            assert tr.current() == outer
        assert tr.current() is None
        spans = {s.name: s for s in tr.spans()}
        assert spans["kernel:neighbors"].parent_id == outer
        assert spans["dispatch"].parent_id is None

    def test_under_parents_to_open_span(self):
        tr = make_tracer()
        sub = tr.begin("sub", "router")
        with tr.under(sub):
            with tr.span("dispatch", "serve"):
                pass
        tr.end(sub)
        spans = {s.name: s for s in tr.spans()}
        assert spans["dispatch"].parent_id == sub

    def test_under_none_is_noop(self):
        tr = make_tracer()
        with tr.under(None):
            assert tr.current() is None

    def test_explicit_parent_wins_over_stack(self):
        tr = make_tracer()
        root = tr.begin("request", "serve")
        with tr.span("dispatch", "serve"):
            sid = tr.record("enqueue", "serve", start_ns=0.0, end_ns=1.0,
                            parent=root)
        tr.end(root)
        span = next(s for s in tr.spans() if s.name == "enqueue")
        assert span.parent_id == root


class TestCostAttribution:
    def test_on_cost_charges_innermost(self):
        tr = make_tracer()
        with tr.span("dispatch", "serve"):
            with tr.span("kernel:neighbors", "query"):
                tr.on_cost("decode", Cost(reads=3))
                tr.on_cost("gather", Cost(bit_ops=5))
        spans = {s.name: s for s in tr.spans()}
        assert spans["kernel:neighbors"].cost == Cost(reads=3, bit_ops=5)
        assert spans["dispatch"].cost == Cost.zero()

    def test_on_cost_outside_any_span_drops(self):
        tr = make_tracer()
        tr.on_cost("decode", Cost(reads=3))  # no open span: dropped
        assert tr.spans() == []

    def test_add_cost_after_close_is_noop(self):
        tr = make_tracer()
        sid = tr.begin("a", "serve")
        tr.end(sid)
        tr.add_cost(sid, Cost(reads=1))
        assert tr.spans()[0].cost == Cost.zero()

    def test_annotate_open_and_closed(self):
        tr = make_tracer()
        sid = tr.begin("a", "serve", meta={"x": 1})
        tr.annotate(sid, y=2)
        tr.end(sid)
        tr.annotate(sid, z=3)  # closed: no-op
        assert tr.spans()[0].meta == {"x": 1, "y": 2}


class TestRingAndSampling:
    def test_ring_drops_oldest_and_counts(self):
        tr = make_tracer(capacity=3)
        for i in range(5):
            sid = tr.begin(f"s{i}", "serve")
            tr.end(sid)
        assert tr.dropped == 2
        assert [s.name for s in tr.spans()] == ["s2", "s3", "s4"]

    def test_clear_resets(self):
        tr = make_tracer(capacity=1)
        for _ in range(3):
            tr.end(tr.begin("a", "serve"))
        tr.clear()
        assert tr.spans() == []
        assert tr.dropped == 0

    def test_sampling_modulo(self):
        tr = make_tracer(sample_every=4)
        picks = [tr.should_sample() for _ in range(8)]
        assert picks == [True, False, False, False, True, False, False, False]

    def test_sample_every_one_traces_everything(self):
        tr = make_tracer()
        assert all(tr.should_sample() for _ in range(5))

    def test_sample_root_matches_should_sample_at_top_level(self):
        tr = make_tracer(sample_every=4)
        picks = [tr.sample_root() for _ in range(8)]
        assert picks == [True, False, False, False, True, False, False, False]

    def test_sample_root_under_open_span_never_consumes(self):
        tr = make_tracer(sample_every=2)
        with tr.span("outer", "router"):
            assert not tr.sample_root()  # nested submit: not a root...
        assert tr.sample_root()  # ...and the counter did not advance


class TestConfigValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError, match="capacity"):
            ObsConfig(capacity=0)

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ReproError, match="sample_every"):
            ObsConfig(sample_every=0)


class TestNullTracer:
    def test_everything_is_a_noop(self):
        tr = NULL_TRACER
        assert not tr.enabled
        assert not tr.should_sample()
        assert not tr.sample_root()
        assert tr.begin("a", "serve") == -1
        tr.end(-1)
        assert tr.record("a", "serve", start_ns=0.0, end_ns=1.0) == -1
        with tr.span("a", "serve") as sid:
            assert sid == -1
        with tr.under(5):
            pass
        assert tr.current() is None
        tr.on_cost("x", Cost(reads=1))
        tr.add_cost(1, Cost(reads=1))
        tr.annotate(1, k=1)
        assert tr.spans() == []
        tr.clear()
        assert tr.dropped == 0
