"""Integration: the monolithic serve path emits one coherent span tree.

A traced :class:`GraphQueryServer` must produce, per sampled request,
the root span plus the analytic queue-wait span, the batch dispatch
span, and the kernel spans underneath — with parent links intact and
the kernel cost equal to what a direct :class:`QueryEngine` run of the
same keys declares.  Sampling must thin roots, a disabled config must
cost nothing, and the registry snapshot must carry the serve + trace
sources.
"""

import numpy as np
import pytest

from repro.lsm import build_lsm_store
from repro.obs import NULL_TRACER, ObsConfig, subtree_cost
from repro.parallel import SerialExecutor
from repro.parallel.cost import Cost
from repro.query import QueryEngine
from repro.serve import (
    AnalyticsRequest,
    EdgeRequest,
    GraphQueryServer,
    ManualClock,
    NeighborsRequest,
    ServerConfig,
    WriteRequest,
)
from repro.stores import open_store


@pytest.fixture
def edges():
    rng = np.random.default_rng(11)
    n, m = 60, 500
    keys = np.unique(rng.integers(0, n * n, m))
    return keys // n, keys % n, n


@pytest.fixture
def packed(edges):
    src, dst, n = edges
    return open_store("packed", src, dst, n, sort=True)


def _server(store, **knobs):
    knobs.setdefault("obs", True)
    return GraphQueryServer(store, config=ServerConfig(**knobs),
                            clock=ManualClock())


def _serve(server, requests, gap_ns=1000.0):
    clock = server._clock
    slots = []
    for i, req in enumerate(requests):
        clock.advance_to(i * gap_ns)
        slots.append(server.submit(req))
        server.pump(clock())
    server.drain()
    return slots


def _by_name(spans):
    out = {}
    for s in spans:
        out.setdefault(s.name, []).append(s)
    return out


def _direct_cost(store, node):
    charged = []
    ex = SerialExecutor()
    ex.cost_observer = lambda label, cost: charged.append(cost)
    QueryEngine(store, ex).neighbors([node])
    total = Cost.zero()
    for c in charged:
        total = total + c
    return total


class TestRequestTree:
    def test_full_chain_with_parent_links(self, packed):
        server = _server(packed, max_batch_size=4)
        _serve(server, [NeighborsRequest(node=i) for i in range(8)]
               + [EdgeRequest(u=0, v=1)])
        spans = server.tracer.spans()
        named = _by_name(spans)
        roots = named["request"]
        assert len(roots) == 9
        assert all(s.layer == "serve" and s.parent_id is None for s in roots)
        root_ids = {s.span_id for s in roots}
        # every request got its analytic queue-wait span under its root
        assert len(named["enqueue"]) == 9
        assert all(s.parent_id in root_ids for s in named["enqueue"])
        # dispatches parent to the first traced root of their batch
        dispatch_ids = set()
        for d in named["dispatch"]:
            assert d.layer == "serve"
            assert d.parent_id in root_ids
            assert d.meta["batch_size"] >= 1
            dispatch_ids.add(d.span_id)
        # kernels sit under dispatches and carry real cost
        for k in named["kernel:neighbors"] + named.get("kernel:edges", []):
            assert k.layer == "query"
            assert k.parent_id in dispatch_ids
        assert any(k.cost != Cost.zero() for k in named["kernel:neighbors"])

    def test_kernel_cost_matches_direct_engine_run(self, packed):
        server = _server(packed, max_batch_size=1)
        _serve(server, [NeighborsRequest(node=5)])
        spans = server.tracer.spans()
        (root,) = [s for s in spans if s.name == "request"]
        assert subtree_cost(spans, root.span_id) == _direct_cost(packed, 5)

    def test_rejected_request_root_carries_status(self, packed):
        server = _server(packed, max_batch_size=100,
                         max_wait_ns=float("inf"),
                         queue_capacity=1, policy="reject")
        clock = server._clock
        server.submit(NeighborsRequest(node=0))
        server.submit(NeighborsRequest(node=1))  # over capacity: rejected
        server.drain()
        statuses = [s.meta.get("status") for s in server.tracer.spans()
                    if s.name == "request"]
        assert statuses.count("rejected") == 1


class TestWriteAndJobSpans:
    def test_write_span_under_root(self, edges):
        src, dst, n = edges
        server = _server(build_lsm_store(src, dst, n))
        server.submit(WriteRequest(op="insert", u=0, v=59))
        server.drain()
        spans = server.tracer.spans()
        named = _by_name(spans)
        (root,) = named["request"]
        (write,) = named["write"]
        assert write.layer == "lsm"
        assert write.parent_id == root.span_id
        assert write.meta["op"] == "insert"
        assert write.meta["applied"] is True

    def test_job_and_slice_spans(self, packed):
        server = _server(packed, job_slice_steps=2)
        server.submit_job(AnalyticsRequest(algorithm="bfs",
                                           params={"source": 0}))
        server.drain()
        named = _by_name(server.tracer.spans())
        (job,) = named["job"]
        assert job.layer == "algorithms"
        assert job.meta["algorithm"] == "bfs"
        slices = named["job-slice"]
        assert slices and all(s.parent_id == job.span_id for s in slices)
        # the traversal's kernel cost lands inside the slices
        total = Cost.zero()
        for s in slices:
            total = total + s.cost
        assert total != Cost.zero()


class TestKnobs:
    def test_sampling_thins_roots(self, packed):
        server = _server(packed, obs=ObsConfig(sample_every=4),
                         max_batch_size=1)
        _serve(server, [NeighborsRequest(node=i) for i in range(8)])
        roots = [s for s in server.tracer.spans() if s.name == "request"]
        assert len(roots) == 2

    def test_obs_off_records_nothing(self, packed):
        server = GraphQueryServer(packed, config=ServerConfig(),
                                  clock=ManualClock())
        assert server.tracer is NULL_TRACER
        assert server.engine.executor.cost_observer is None
        _serve(server, [NeighborsRequest(node=0)])
        assert server.tracer.spans() == []

    def test_obs_false_means_off(self, packed):
        server = _server(packed, obs=False)
        assert server.tracer is NULL_TRACER

    def test_ring_capacity_bounds_spans(self, packed):
        server = _server(packed, obs=ObsConfig(capacity=4),
                         max_batch_size=1)
        _serve(server, [NeighborsRequest(node=i) for i in range(6)])
        assert len(server.tracer.spans()) == 4
        assert server.tracer.dropped > 0


class TestRegistryWiring:
    def test_snapshot_carries_serve_and_trace_sources(self, packed):
        server = _server(packed)
        _serve(server, [NeighborsRequest(node=0)])
        snap = server.registry.snapshot()
        assert snap["server.serve"]["completed"] == 1
        assert snap["server.trace"]["finished_spans"] >= 1
        assert snap["server.trace"]["sample_every"] == 1

    def test_untraced_server_omits_trace_source(self, packed):
        server = _server(packed, obs=None)
        snap = server.registry.snapshot()
        assert "server.trace" not in snap
        assert "server.serve" in snap
