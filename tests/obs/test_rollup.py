"""Unit tests for rollups, subtree sums, and flamegraph folding."""

from repro.obs import (
    Span,
    children_index,
    flamegraph_folded,
    rollup_spans,
    subtree_cost,
    subtree_spans,
)
from repro.parallel.cost import DEFAULT_COST_MODEL, Cost


def span(sid, name, layer, *, parent=None, start=0.0, end=10.0, cost=None):
    s = Span(span_id=sid, name=name, layer=layer, start_ns=start,
             end_ns=end, parent_id=parent)
    if cost is not None:
        s.cost = cost
    return s


def sample_tree():
    """request -> (enqueue, dispatch -> kernel); plus a second request."""
    return [
        span(1, "request", "serve", start=0.0, end=100.0),
        span(2, "enqueue", "serve", parent=1, start=0.0, end=20.0),
        span(3, "dispatch", "serve", parent=1, start=20.0, end=90.0),
        span(4, "kernel:neighbors", "query", parent=3, start=25.0, end=85.0,
             cost=Cost(reads=4, bit_ops=10)),
        span(5, "request", "serve", start=50.0, end=130.0),
    ]


class TestRollup:
    def test_aggregates_by_layer_and_name(self):
        rows = {r.key: r for r in rollup_spans(sample_tree())}
        assert rows["serve:request"].spans == 2
        assert rows["serve:request"].wall_ns == 180.0
        assert rows["query:kernel:neighbors"].cost == Cost(reads=4, bit_ops=10)

    def test_sorted_heaviest_cost_first(self):
        rows = rollup_spans(sample_tree())
        assert rows[0].key == "query:kernel:neighbors"
        assert rows[0].cost_ns == DEFAULT_COST_MODEL.time_ns(
            Cost(reads=4, bit_ops=10))
        # zero-cost phases tie on cost and fall back to wall then key
        zero = [r.key for r in rows[1:]]
        assert zero == ["serve:request", "serve:dispatch", "serve:enqueue"]

    def test_empty_input(self):
        assert rollup_spans([]) == []


class TestTree:
    def test_children_index_roots_under_none(self):
        index = children_index(sample_tree())
        assert [s.span_id for s in index[None]] == [1, 5]
        assert [s.span_id for s in index[1]] == [2, 3]
        assert [s.span_id for s in index[3]] == [4]

    def test_subtree_spans_depth_first(self):
        ids = [s.span_id for s in subtree_spans(sample_tree(), 1)]
        assert ids == [1, 2, 3, 4]

    def test_subtree_of_leaf_is_itself(self):
        ids = [s.span_id for s in subtree_spans(sample_tree(), 4)]
        assert ids == [4]

    def test_subtree_cost_sums_descendants(self):
        spans = sample_tree()
        assert subtree_cost(spans, 1) == Cost(reads=4, bit_ops=10)
        assert subtree_cost(spans, 5) == Cost.zero()


class TestFlamegraph:
    def test_folded_paths_and_values(self):
        lines = flamegraph_folded(sample_tree())
        assert len(lines) == 1  # only cost-bearing spans emit
        path, value = lines[0].rsplit(" ", 1)
        assert path == "request;dispatch;kernel:neighbors"
        expected = DEFAULT_COST_MODEL.time_ns(Cost(reads=4, bit_ops=10))
        assert int(value) == int(round(expected))

    def test_orphan_parent_truncates_path(self):
        orphan = [span(7, "kernel:edges", "query", parent=99,
                       cost=Cost(reads=1))]
        (line,) = flamegraph_folded(orphan)
        assert line.startswith("kernel:edges ")

    def test_zero_cost_trace_is_empty(self):
        assert flamegraph_folded([span(1, "request", "serve")]) == []
