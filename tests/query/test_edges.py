"""Algorithms 7 and 8 — edge-existence queries."""

import numpy as np
import pytest

from repro.csr.builder import build_csr_serial
from repro.csr.packed import BitPackedCSR
from repro.errors import QueryError, ValidationError
from repro.parallel import SimulatedMachine
from repro.query.edges import batch_edge_existence, single_edge_exists


@pytest.fixture
def graph(sorted_edges):
    src, dst, n = sorted_edges
    return build_csr_serial(src, dst, n)


@pytest.fixture(params=["csr", "packed"])
def store(request, graph):
    return graph if request.param == "csr" else BitPackedCSR.from_csr(graph)


def make_queries(graph, rng, k=100):
    src, dst = graph.edges()
    qs = np.stack(
        [rng.integers(0, graph.num_nodes, k), rng.integers(0, graph.num_nodes, k)],
        axis=1,
    )
    # guarantee a healthy share of real edges
    picks = rng.integers(0, graph.num_edges, k // 2)
    qs[: k // 2, 0] = src[picks]
    qs[: k // 2, 1] = dst[picks]
    return qs


class TestBatchEdgeExistence:
    @pytest.mark.parametrize("method", ["scan", "bisect"])
    def test_matches_pointwise(self, store, graph, rng, executor, method):
        qs = make_queries(graph, rng)
        got = batch_edge_existence(store, qs, executor, method=method)
        want = np.array([graph.has_edge(int(u), int(v)) for u, v in qs])
        assert np.array_equal(got, want)

    def test_accepts_pair_sequences(self, store):
        got = batch_edge_existence(store, [(0, 1), (1, 0)])
        assert got.shape == (2,)

    def test_empty_batch(self, store, executor):
        got = batch_edge_existence(store, np.zeros((0, 2), dtype=np.int64), executor)
        assert got.shape == (0,)

    def test_shape_validation(self, store):
        with pytest.raises(QueryError, match="pairs"):
            batch_edge_existence(store, np.zeros((2, 3), dtype=np.int64))

    def test_range_validation(self, store):
        with pytest.raises(QueryError):
            batch_edge_existence(store, [(0, store.num_nodes)])

    def test_unknown_method(self, store):
        with pytest.raises(ValidationError, match="unknown search method"):
            batch_edge_existence(store, [(0, 1)], method="quantum")

    def test_bisect_simulated_cheaper_than_scan(self, graph, rng):
        """The paper's binary-search extension must actually pay off in
        inspected elements on wide rows."""
        qs = make_queries(graph, rng, k=400)
        t = {}
        for method in ("scan", "bisect"):
            m = SimulatedMachine(4)
            batch_edge_existence(graph, qs, m, method=method)
            t[method] = m.elapsed_ns()
        assert t["bisect"] < t["scan"]


class TestSingleEdgeExists:
    @pytest.mark.parametrize("method", ["scan", "bisect"])
    def test_matches_has_edge(self, store, graph, rng, executor, method):
        for _ in range(30):
            u = int(rng.integers(0, graph.num_nodes))
            v = int(rng.integers(0, graph.num_nodes))
            got = single_edge_exists(store, u, v, executor, method=method)
            assert got == graph.has_edge(u, v)

    def test_present_edge_found_regardless_of_chunk(self, graph):
        src, dst = graph.edges()
        u, v = int(src[0]), int(dst[0])
        for p in (1, 2, 7, 64):
            assert single_edge_exists(graph, u, v, SimulatedMachine(p))

    def test_empty_row(self, graph):
        deg = graph.degrees()
        isolated = int(np.flatnonzero(deg == 0)[0]) if (deg == 0).any() else None
        if isolated is not None:
            assert not single_edge_exists(graph, isolated, 0, SimulatedMachine(4))

    def test_range_check(self, store):
        with pytest.raises(QueryError):
            single_edge_exists(store, store.num_nodes, 0)

    def test_bisect_chunks_each_bisected(self, graph):
        """Bisect within chunks must not miss hits at chunk boundaries."""
        u = int(np.argmax(graph.degrees()))
        row = graph.neighbors(u)
        for v in (int(row[0]), int(row[-1]), int(row[len(row) // 2])):
            for p in (3, 5, 16):
                assert single_edge_exists(graph, u, v, SimulatedMachine(p), method="bisect")
