"""StoreCapabilities resolution — the query layer's one probing site."""

import numpy as np
import pytest

from repro import open_store
from repro.query import RowCache, StoreCapabilities, capabilities
from repro.query.stores import row_decode_cost, row_dtype


@pytest.fixture(scope="module")
def edges():
    rng = np.random.default_rng(21)
    n, m = 40, 300
    src = np.sort(rng.integers(0, n, m))
    return src, rng.integers(0, n, m), n


def test_packed_store_caps(edges):
    src, dst, n = edges
    store = open_store("packed", src, dst, n)
    caps = capabilities(store)
    assert caps == StoreCapabilities(
        has_native_batch=True,
        row_dtype=np.dtype(np.uint64),
        is_packed=True,
        decode_bits=store.column_width,
    )


def test_csr_store_caps(edges):
    src, dst, n = edges
    store = open_store("csr", src, dst, n)
    caps = capabilities(store)
    assert caps.has_native_batch and not caps.is_packed
    assert caps.decode_bits == 1
    assert caps.row_dtype == store.indices.dtype


def test_baseline_without_batch(edges):
    src, dst, n = edges
    store = open_store("adjmatrix", src, dst, n)
    caps = capabilities(store)
    assert not caps.has_native_batch
    assert caps.decode_bits == 1


def test_sharded_inherits_inner_packing(edges):
    src, dst, n = edges
    inner_caps = capabilities(open_store("packed", src, dst, n))
    caps = capabilities(open_store("sharded", src, dst, n, shards=3))
    assert caps.is_packed
    assert caps.decode_bits == inner_caps.decode_bits
    assert caps.row_dtype == inner_caps.row_dtype

    unpacked = capabilities(open_store("sharded", src, dst, n, shards=3,
                                       inner="csr"))
    assert not unpacked.is_packed and unpacked.decode_bits == 1


def test_row_cache_declares_dtype(edges):
    src, dst, n = edges
    cached = RowCache(open_store("packed", src, dst, n), capacity=16)
    caps = capabilities(cached)
    assert caps.has_native_batch
    assert caps.row_dtype == np.dtype(np.uint64)


def test_decode_cost_uses_caps(edges):
    src, dst, n = edges
    packed = open_store("packed", src, dst, n)
    plain = open_store("csr", src, dst, n)
    assert row_decode_cost(packed, 10) == 10 * packed.column_width
    assert row_decode_cost(plain, 10) == 10.0
    # a pre-resolved caps object short-circuits re-probing
    caps = capabilities(packed)
    assert row_decode_cost(packed, 7, caps) == 7 * caps.decode_bits
    assert row_dtype(packed, caps) == caps.row_dtype


def test_caps_frozen():
    caps = StoreCapabilities(True, np.dtype(np.int64), False, 1)
    with pytest.raises(AttributeError):
        caps.is_packed = True
