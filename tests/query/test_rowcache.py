"""The opt-in LRU row cache wrapping any GraphStore."""

import numpy as np
import pytest

from repro.analysis.tracing import render_cache_stats
from repro.csr.builder import build_csr_serial
from repro.csr.packed import BitPackedCSR
from repro.errors import ValidationError
from repro.parallel import SimulatedMachine
from repro.query import (
    GraphStore,
    QueryEngine,
    RowCache,
    batch_edge_existence,
    batch_neighbors,
)


@pytest.fixture
def graph(sorted_edges):
    src, dst, n = sorted_edges
    return build_csr_serial(src, dst, n)


@pytest.fixture
def packed(graph):
    return BitPackedCSR.from_csr(graph)


class TestRowCacheBasics:
    def test_satisfies_store_protocol(self, packed):
        cache = RowCache(packed, capacity=1000)
        assert isinstance(cache, GraphStore)
        assert cache.num_nodes == packed.num_nodes
        assert cache.num_edges == packed.num_edges

    def test_hit_miss_counters(self, packed):
        cache = RowCache(packed, capacity=10_000)
        cache.neighbors(3)
        assert (cache.hits, cache.misses) == (0, 1)
        cache.neighbors(3)
        assert (cache.hits, cache.misses) == (1, 1)
        cache.neighbors(4)
        assert (cache.hits, cache.misses) == (1, 2)

    def test_rows_bit_exact(self, packed, graph, rng):
        cache = RowCache(packed, capacity=10_000)
        for u in rng.integers(0, graph.num_nodes, 100).tolist():
            got = cache.neighbors(u)
            want = packed.neighbors(u)
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)

    def test_has_edge_matches(self, packed, rng):
        cache = RowCache(packed, capacity=10_000)
        for _ in range(60):
            u = int(rng.integers(0, packed.num_nodes))
            v = int(rng.integers(0, packed.num_nodes))
            assert cache.has_edge(u, v) == packed.has_edge(u, v)

    def test_eviction_by_elements(self, graph):
        degs = graph.degrees()
        heavy = [int(u) for u in np.argsort(degs)[::-1][:5]]
        cap = int(degs[heavy].sum()) - 1  # can't hold all five
        cache = RowCache(graph, capacity=cap)
        for u in heavy:
            cache.neighbors(u)
        assert cache.evictions >= 1
        assert cache.stats().elements <= cap

    def test_oversized_row_served_not_cached(self, graph):
        u = int(np.argmax(graph.degrees()))
        cache = RowCache(graph, capacity=graph.degree(u) - 1)
        row = cache.neighbors(u)
        assert np.array_equal(row, graph.neighbors(u))
        assert cache.stats().rows == 0

    def test_clear(self, graph):
        cache = RowCache(graph, capacity=1000)
        cache.neighbors(0)
        cache.clear()
        s = cache.stats()
        assert (s.hits, s.misses, s.rows, s.elements) == (0, 0, 0, 0)

    def test_negative_capacity_rejected(self, graph):
        with pytest.raises(Exception):
            RowCache(graph, capacity=-1)


class TestRowCacheBatch:
    def test_neighbors_batch_parity_and_single_decode(self, packed, rng):
        cache = RowCache(packed, capacity=100_000)
        us = rng.integers(0, packed.num_nodes, 50)
        us = np.concatenate([us, us])  # duplicates hit within the batch
        flat, offs = cache.neighbors_batch(us)
        for i, u in enumerate(us.tolist()):
            assert np.array_equal(flat[offs[i] : offs[i + 1]], packed.neighbors(u))
        # second pass is all hits
        before = cache.misses
        cache.neighbors_batch(us)
        assert cache.misses == before
        assert cache.hits >= len(us)

    def test_rejects_2d(self, packed):
        cache = RowCache(packed, capacity=100)
        with pytest.raises(ValidationError):
            cache.neighbors_batch(np.zeros((2, 2), dtype=np.int64))

    def test_batch_kernels_accept_cache(self, packed, graph, rng):
        cache = RowCache(packed, capacity=100_000)
        us = rng.integers(0, graph.num_nodes, 80)
        rows = batch_neighbors(cache, us, SimulatedMachine(4))
        for u, row in zip(us.tolist(), rows):
            assert np.array_equal(row, packed.neighbors(u))
        qs = np.stack(
            [rng.integers(0, graph.num_nodes, 80), rng.integers(0, graph.num_nodes, 80)],
            axis=1,
        )
        got = batch_edge_existence(cache, qs, SimulatedMachine(4), method="bisect")
        want = np.array([graph.has_edge(int(u), int(v)) for u, v in qs])
        assert np.array_equal(got, want)
        # edge chunks dedupe sources, so they add >= 1 access per chunk
        # on top of the 80 neighbour fetches
        assert cache.hits + cache.misses > 80


class TestRowCacheRetention:
    """Cached rows must be owned copies with honest accounting: a
    resident row may not pin the batch decode buffer (or the CSR's
    whole indices array) it was sliced from, empty rows must not leak
    past the element budget, and re-inserting a resident key must not
    double-count."""

    def test_cached_rows_are_owned_copies(self, packed, graph, rng):
        cache = RowCache(packed, capacity=100_000)
        us = rng.integers(0, packed.num_nodes, 50)
        cache.neighbors_batch(us)
        assert cache.stats().rows > 0
        assert all(row.base is None for row in cache._rows.values())
        # single-row fills through a view-returning store copy too
        csr_cache = RowCache(graph, capacity=100_000)
        csr_cache.neighbors(0)
        assert all(row.base is None for row in csr_cache._rows.values())

    def test_memory_bytes_matches_resident_elements(self, packed, rng):
        cache = RowCache(packed, capacity=100_000)
        us = rng.integers(0, packed.num_nodes, 50)
        cache.neighbors_batch(us)
        stats = cache.stats()
        itemsize = cache.row_dtype.itemsize
        assert (
            cache.memory_bytes() - packed.memory_bytes()
            == stats.elements * itemsize
        )

    def test_empty_rows_never_cached(self):
        g = build_csr_serial([0, 0], [1, 2], 4)  # node 3 is isolated
        cache = RowCache(g, capacity=100)
        for _ in range(3):
            assert cache.neighbors(3).shape == (0,)
        s = cache.stats()
        assert (s.rows, s.elements, s.misses) == (0, 0, 3)

    def test_capacity_zero_caches_nothing(self):
        g = build_csr_serial([0, 0], [1, 2], 4)
        cache = RowCache(g, capacity=0)
        for u in (0, 1, 3, 0):
            cache.neighbors(u)
        s = cache.stats()
        assert (s.rows, s.elements, s.hits) == (0, 0, 0)

    def test_reinsert_does_not_double_count(self, packed):
        cache = RowCache(packed, capacity=100_000)
        row = cache.neighbors(0)
        if row.shape[0] == 0:
            pytest.skip("fixture node 0 has no edges")
        before = cache.stats().elements
        cache._insert(0, packed.neighbors(0))
        assert cache.stats().elements == before
        assert cache.stats().rows == len(cache._rows)


class TestRowCacheSurfacing:
    def test_repr_carries_counters(self, packed):
        cache = RowCache(packed, capacity=500)
        cache.neighbors(1)
        cache.neighbors(1)
        text = repr(cache)
        assert "hits=1" in text and "misses=1" in text and "hit_rate" in text

    def test_engine_repr_surfaces_cache(self, packed):
        cache = RowCache(packed, capacity=500)
        engine = QueryEngine(cache, SimulatedMachine(2))
        engine.neighbors([0, 1, 0])
        assert "RowCache" in repr(engine)
        assert "hits=" in repr(engine)

    def test_render_cache_stats(self, packed):
        cache = RowCache(packed, capacity=500)
        cache.neighbors(2)
        cache.neighbors(2)
        table = render_cache_stats(cache)
        assert "hit rate" in table
        assert "50.0%" in table

    def test_stats_hit_rate_empty(self, packed):
        assert RowCache(packed, capacity=10).stats().hit_rate == 0.0


class TestRowCacheInvalidation:
    """invalidate(nodes) drops resident rows so mutable stores can keep
    cached reads consistent after writes (the lsm serving path)."""

    def test_invalidate_drops_resident_rows(self, packed):
        cache = RowCache(packed, capacity=10_000)
        cache.neighbors(1)
        cache.neighbors(2)
        elements = cache.stats().elements
        dropped = cache.invalidate([1, 7])  # 7 was never cached
        assert dropped == 1
        assert cache.invalidations == 1
        assert cache.stats().elements < elements or packed.degree(1) == 0
        # next read is a miss, re-fetched from the store
        misses = cache.misses
        cache.neighbors(1)
        assert cache.misses == misses + 1

    def test_invalidate_prevents_stale_reads(self, sorted_edges):
        """Without invalidation a cached row outlives a write; with it
        the next read sees the new edge."""
        from repro.lsm import build_lsm_store

        src, dst, n = sorted_edges
        store = build_lsm_store(src, dst, n)
        cache = RowCache(store, capacity=100_000)
        u = 5
        v = next(x for x in range(n) if not store.has_edge(u, x))
        stale = cache.neighbors(u)
        store.insert_edge(u, v)
        assert np.array_equal(cache.neighbors(u), stale), "expected staleness"
        cache.invalidate([u])
        assert v in cache.neighbors(u).tolist()

    def test_invalidate_accepts_array_and_counts_cumulatively(self, packed):
        cache = RowCache(packed, capacity=10_000)
        for u in range(6):
            cache.neighbors(u)
        assert cache.invalidate(np.arange(3)) == 3
        assert cache.invalidate(np.arange(6)) == 3  # 0-2 already gone
        assert cache.invalidations == 6
        assert cache.invalidate([]) == 0

    def test_invalidations_rendered_and_reset(self, packed):
        cache = RowCache(packed, capacity=10_000)
        cache.neighbors(2)
        cache.invalidate([2])
        assert cache.stats().invalidations == 1
        assert "invalidations" in render_cache_stats(cache)
        cache.clear()
        assert cache.invalidations == 0
