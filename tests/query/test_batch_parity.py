"""Batch-vs-scalar parity for the vectorized query path.

The batched kernels (gather row decode, vectorized edge membership)
must return results *identical* — same values, same dtype — to per-row
scalar calls, across every store representation and every executor,
and must charge the simulated machine exactly the same cost.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import AdjacencyListStore, EdgeListStore
from repro.csr.builder import build_csr_serial, ensure_sorted
from repro.csr.packed import BitPackedCSR
from repro.parallel import SerialExecutor, SimulatedMachine
from repro.parallel.chunking import chunk_bounds
from repro.parallel.cost import Cost
from repro.query import batch_edge_existence, batch_neighbors, neighbors_batch
from repro.query.edges import _membership
from repro.query.stores import row_decode_cost

STORE_BUILDERS = {
    "csr": lambda src, dst, n: build_csr_serial(src, dst, n),
    "packed": lambda src, dst, n: BitPackedCSR.from_csr(build_csr_serial(src, dst, n)),
    "gap": lambda src, dst, n: BitPackedCSR.from_csr(
        build_csr_serial(src, dst, n), gap_encode=True
    ),
    "adjlist": AdjacencyListStore,
    "edgelist": EdgeListStore,
}

EXECUTORS = [
    ("serial", lambda: SerialExecutor()),
    ("sim-p1", lambda: SimulatedMachine(1)),
    ("sim-p4", lambda: SimulatedMachine(4)),
    ("sim-p16", lambda: SimulatedMachine(16)),
]


@st.composite
def edge_lists(draw):
    n = draw(st.integers(1, 24))
    m = draw(st.integers(0, 80))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m).map(
            lambda xs: np.asarray(xs, dtype=np.int64)
        )
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m).map(
            lambda xs: np.asarray(xs, dtype=np.int64)
        )
    )
    src, dst = ensure_sorted(src, dst)
    return src, dst, n


@settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(data=st.data(), edges=edge_lists())
@pytest.mark.parametrize("store_name", sorted(STORE_BUILDERS))
def test_neighbors_batch_bit_exact(store_name, data, edges):
    """The (flat, offsets) bulk fetch equals per-row neighbors() calls."""
    src, dst, n = edges
    store = STORE_BUILDERS[store_name](src, dst, n)
    k = data.draw(st.integers(0, 30))
    us = np.asarray(
        data.draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k)),
        dtype=np.int64,
    )
    flat, offs = neighbors_batch(store, us)
    assert offs.shape == (k + 1,)
    assert int(offs[0]) == 0
    for i, u in enumerate(us.tolist()):
        row = store.neighbors(u)
        got = flat[offs[i] : offs[i + 1]]
        assert got.dtype == row.dtype
        assert np.array_equal(got, row)


@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(data=st.data(), edges=edge_lists())
@pytest.mark.parametrize("exec_name,make_executor", EXECUTORS, ids=[e[0] for e in EXECUTORS])
@pytest.mark.parametrize("store_name", sorted(STORE_BUILDERS))
def test_batch_neighbors_bit_exact(store_name, exec_name, make_executor, data, edges):
    """Algorithm 6 through the batch path equals the scalar per-row path."""
    src, dst, n = edges
    store = STORE_BUILDERS[store_name](src, dst, n)
    k = data.draw(st.integers(0, 40))
    us = np.asarray(
        data.draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k)),
        dtype=np.int64,
    )
    got = batch_neighbors(store, us, make_executor())
    assert len(got) == k
    for u, row in zip(us.tolist(), got):
        want = store.neighbors(u)
        assert row.dtype == want.dtype
        assert np.array_equal(row, want)


@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(data=st.data(), edges=edge_lists())
@pytest.mark.parametrize("method", ["scan", "bisect"])
@pytest.mark.parametrize("exec_name,make_executor", EXECUTORS, ids=[e[0] for e in EXECUTORS])
@pytest.mark.parametrize("store_name", sorted(STORE_BUILDERS))
def test_batch_edges_bit_exact(
    store_name, exec_name, make_executor, method, data, edges
):
    """Algorithm 7's vectorized membership equals per-query has_edge."""
    src, dst, n = edges
    store = STORE_BUILDERS[store_name](src, dst, n)
    k = data.draw(st.integers(0, 40))
    qs = np.asarray(
        data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                min_size=k,
                max_size=k,
            )
        ),
        dtype=np.int64,
    ).reshape(k, 2)
    got = batch_edge_existence(store, qs, make_executor(), method=method)
    want = np.array([store.has_edge(int(u), int(v)) for u, v in qs], dtype=bool)
    assert got.dtype == np.bool_
    assert np.array_equal(got, want)


class TestUnsortedRows:
    """Rows that are not internally sorted are legal (``build_csr``
    only enforces source order), and the batch membership kernel must
    keep matching the scalar ``_membership`` path on them — the keyed
    ``searchsorted`` shortcut is only valid on sorted rows."""

    @staticmethod
    def _stores():
        src = np.array([0, 0, 0, 1], dtype=np.int64)
        dst = np.array([3, 1, 2, 0], dtype=np.int64)
        g = build_csr_serial(src, dst, 4)
        return {"csr": g, "packed": BitPackedCSR.from_csr(g)}

    @pytest.mark.parametrize("method", ["scan", "bisect"])
    @pytest.mark.parametrize("store_name", ["csr", "packed"])
    def test_review_repro(self, store_name, method):
        store = self._stores()[store_name]
        qs = np.array(
            [(0, 3), (0, 1), (0, 2), (0, 0), (1, 0), (2, 0), (3, 3)],
            dtype=np.int64,
        )
        got = batch_edge_existence(store, qs, SerialExecutor(), method=method)
        want = np.array(
            [
                _membership(store.neighbors(int(u)), int(v), method)[0]
                for u, v in qs
            ],
            dtype=bool,
        )
        assert np.array_equal(got, want)
        if method == "scan":
            # order-independent membership: every neighbour of 0 found
            assert got[:3].all() and not got[3]

    @pytest.mark.parametrize("method", ["scan", "bisect"])
    @pytest.mark.parametrize("exec_name,make_executor", EXECUTORS, ids=[e[0] for e in EXECUTORS])
    def test_random_unsorted_parity(self, exec_name, make_executor, method, rng):
        n, m = 40, 300
        src = np.sort(rng.integers(0, n, m))
        dst = rng.integers(0, n, m)  # rows unsorted with near-certainty
        g = build_csr_serial(src, dst, n)
        assert not g.rows_sorted()
        for store in (g, BitPackedCSR.from_csr(g)):
            qs = np.stack(
                [rng.integers(0, n, 120), rng.integers(0, n, 120)], axis=1
            )
            got = batch_edge_existence(store, qs, make_executor(), method=method)
            want = np.array(
                [
                    _membership(store.neighbors(int(u)), int(v), method)[0]
                    for u, v in qs
                ],
                dtype=bool,
            )
            assert np.array_equal(got, want)

    @pytest.mark.parametrize("method", ["scan", "bisect"])
    @pytest.mark.parametrize("p", [1, 4])
    def test_unsorted_cost_parity(self, rng, p, method):
        n, m = 40, 300
        src = np.sort(rng.integers(0, n, m))
        dst = rng.integers(0, n, m)
        store = build_csr_serial(src, dst, n)
        qs = np.stack([rng.integers(0, n, 150), rng.integers(0, n, 150)], axis=1)
        machine = SimulatedMachine(p)
        batch_edge_existence(store, qs, machine, method=method)
        reference = SimulatedMachine(p)
        bounds = chunk_bounds(qs.shape[0], p)

        def scalar_chunk(cid):
            def task(ctx):
                s, e = int(bounds[cid]), int(bounds[cid + 1])
                decode = 0.0
                inspected = 0
                for i in range(s, e):
                    row = store.neighbors(int(qs[i, 0]))
                    decode += row_decode_cost(store, row.shape[0])
                    _, steps = _membership(row, int(qs[i, 1]), method)
                    inspected += steps
                ctx.charge(
                    Cost(reads=2 * (e - s) + inspected, writes=e - s, bit_ops=decode)
                )

            return task

        reference.parallel(
            [scalar_chunk(c) for c in range(p)], label=f"query:edges-{method}"
        )
        assert machine.elapsed_ns() == reference.elapsed_ns()


class TestCostParity:
    """The batch kernels charge the simulated machine exactly what the
    per-query scalar loop would have charged — Cost semantics are part
    of the reproduction contract."""

    @pytest.fixture()
    def store_matrix(self, sorted_edges):
        src, dst, n = sorted_edges
        g = build_csr_serial(src, dst, n)
        return {
            "csr": g,
            "packed": BitPackedCSR.from_csr(g),
            "gap": BitPackedCSR.from_csr(g, gap_encode=True),
        }

    @pytest.mark.parametrize("p", [1, 4, 16])
    @pytest.mark.parametrize("store_name", ["csr", "packed", "gap"])
    def test_neighbors_cost(self, store_matrix, store_name, rng, p):
        store = store_matrix[store_name]
        us = rng.integers(0, store.num_nodes, 200)
        machine = SimulatedMachine(p)
        batch_neighbors(store, us, machine)
        reference = SimulatedMachine(p)
        bounds = chunk_bounds(us.shape[0], p)

        def scalar_chunk(cid):
            def task(ctx):
                s, e = int(bounds[cid]), int(bounds[cid + 1])
                decode = 0.0
                for i in range(s, e):
                    row = store.neighbors(int(us[i]))
                    decode += row_decode_cost(store, row.shape[0])
                ctx.charge(Cost(reads=e - s, writes=e - s, bit_ops=decode))

            return task

        reference.parallel(
            [scalar_chunk(c) for c in range(p)], label="query:neighbors"
        )
        assert machine.elapsed_ns() == reference.elapsed_ns()

    @pytest.mark.parametrize("method", ["scan", "bisect"])
    @pytest.mark.parametrize("p", [1, 4, 16])
    @pytest.mark.parametrize("store_name", ["csr", "packed", "gap"])
    def test_edges_cost(self, store_matrix, store_name, rng, p, method):
        store = store_matrix[store_name]
        n = store.num_nodes
        qs = np.stack([rng.integers(0, n, 200), rng.integers(0, n, 200)], axis=1)
        machine = SimulatedMachine(p)
        batch_edge_existence(store, qs, machine, method=method)
        reference = SimulatedMachine(p)
        bounds = chunk_bounds(qs.shape[0], p)

        def scalar_chunk(cid):
            def task(ctx):
                s, e = int(bounds[cid]), int(bounds[cid + 1])
                decode = 0.0
                inspected = 0
                for i in range(s, e):
                    u, v = int(qs[i, 0]), int(qs[i, 1])
                    row = store.neighbors(u)
                    decode += row_decode_cost(store, row.shape[0])
                    _, steps = _membership(row, v, method)
                    inspected += steps
                ctx.charge(
                    Cost(
                        reads=2 * (e - s) + inspected,
                        writes=e - s,
                        bit_ops=decode,
                    )
                )

            return task

        reference.parallel(
            [scalar_chunk(c) for c in range(p)], label=f"query:edges-{method}"
        )
        assert machine.elapsed_ns() == reference.elapsed_ns()
