"""Algorithm 6 — batched neighbourhood queries."""

import numpy as np
import pytest

from repro.csr.builder import build_csr_serial
from repro.csr.packed import BitPackedCSR
from repro.errors import QueryError
from repro.parallel import SimulatedMachine
from repro.query.neighbors import batch_neighbors


@pytest.fixture
def graph(sorted_edges):
    src, dst, n = sorted_edges
    return build_csr_serial(src, dst, n)


@pytest.fixture(params=["csr", "packed", "gap"])
def store(request, graph):
    if request.param == "csr":
        return graph
    if request.param == "packed":
        return BitPackedCSR.from_csr(graph)
    return BitPackedCSR.from_csr(graph, gap_encode=True)


class TestBatchNeighbors:
    def test_matches_pointwise(self, store, graph, rng, executor):
        queries = rng.integers(0, graph.num_nodes, 60)
        got = batch_neighbors(store, queries, executor)
        assert len(got) == 60
        for u, row in zip(queries.tolist(), got):
            assert np.asarray(row, dtype=np.int64).tolist() == graph.neighbors(u).tolist()

    def test_duplicate_queries_duplicate_rows(self, store):
        got = batch_neighbors(store, [3, 3, 3])
        assert len(got) == 3
        assert all(np.array_equal(got[0], r) for r in got)

    def test_empty_batch(self, store, executor):
        assert batch_neighbors(store, [], executor) == []

    def test_invalid_id_rejected_before_execution(self, store):
        with pytest.raises(QueryError):
            batch_neighbors(store, [0, store.num_nodes])
        with pytest.raises(QueryError):
            batch_neighbors(store, [-1])

    def test_rejects_2d(self, store):
        with pytest.raises(QueryError):
            batch_neighbors(store, np.zeros((2, 2), dtype=np.int64))

    def test_simulated_batch_speeds_up(self, store, rng):
        queries = rng.integers(0, store.num_nodes, 512)
        times = {}
        for p in (1, 16):
            m = SimulatedMachine(p)
            batch_neighbors(store, queries, m)
            times[p] = m.elapsed_ns()
        assert times[16] < times[1]

    def test_packed_decode_charged_more_than_raw(self, graph, rng):
        """Packed stores pay per-bit decode; the cost model must see it."""
        packed = BitPackedCSR.from_csr(graph)
        queries = rng.integers(0, graph.num_nodes, 200)
        t = {}
        for name, store in (("csr", graph), ("packed", packed)):
            m = SimulatedMachine(4)
            batch_neighbors(store, queries, m)
            t[name] = m.elapsed_ns()
        assert t["packed"] > t["csr"]
