"""Algorithm 9 — the QueryEngine dispatcher."""

import numpy as np
import pytest

from repro.baselines import EdgeListStore
from repro.csr.builder import build_csr_serial
from repro.csr.packed import BitPackedCSR
from repro.parallel import SimulatedMachine
from repro.query.engine import QueryEngine
from repro.query.stores import GraphStore, row_decode_cost


@pytest.fixture
def graph(sorted_edges):
    src, dst, n = sorted_edges
    return build_csr_serial(src, dst, n)


class TestEngine:
    def test_all_three_entry_points_agree_with_store(self, graph, rng):
        engine = QueryEngine(BitPackedCSR.from_csr(graph), SimulatedMachine(4))
        nodes = rng.integers(0, graph.num_nodes, 20)
        rows = engine.neighbors(nodes)
        for u, row in zip(nodes.tolist(), rows):
            assert np.asarray(row, dtype=np.int64).tolist() == graph.neighbors(u).tolist()
        qs = [(int(rng.integers(0, graph.num_nodes)), int(rng.integers(0, graph.num_nodes))) for _ in range(20)]
        exists = engine.has_edges(qs)
        for (u, v), e in zip(qs, exists):
            assert e == graph.has_edge(u, v)
            assert engine.has_edge(u, v) == graph.has_edge(u, v)

    def test_executor_clock_accumulates_across_calls(self, graph):
        machine = SimulatedMachine(2)
        engine = QueryEngine(graph, machine)
        engine.neighbors([0, 1])
        t1 = machine.elapsed_ns()
        engine.has_edges([(0, 1)])
        assert machine.elapsed_ns() > t1

    def test_default_executor_serial(self, graph):
        engine = QueryEngine(graph)
        assert engine.executor.p == 1

    def test_works_with_baseline_stores(self, sorted_edges, rng):
        src, dst, n = sorted_edges
        graph = build_csr_serial(src, dst, n)
        engine = QueryEngine(EdgeListStore(src, dst, n), SimulatedMachine(3))
        for _ in range(15):
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            assert engine.has_edge(u, v) == graph.has_edge(u, v)


class TestStoreProtocol:
    def test_csr_and_packed_satisfy_protocol(self, graph):
        assert isinstance(graph, GraphStore)
        assert isinstance(BitPackedCSR.from_csr(graph), GraphStore)

    def test_row_decode_cost(self, graph):
        packed = BitPackedCSR.from_csr(graph)
        assert row_decode_cost(graph, 10) == 10.0
        assert row_decode_cost(packed, 10) == 10.0 * packed.column_width
