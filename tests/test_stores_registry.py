"""The store registry, open_store, and protocol conformance.

The conformance meta-test runs every *registered* store kind —
including the sharded composite — through the GraphStore contract:
isinstance against the protocol, row_dtype consistency between scalar
and batch paths, and the neighbors_batch offset invariants.
"""

import numpy as np
import pytest

from repro import available_stores, open_store, register_store
from repro.errors import ValidationError
from repro.query import capabilities
from repro.query.stores import GraphStore, neighbors_batch
from repro.stores import get_store_spec


@pytest.fixture(scope="module")
def edges():
    # distinct (u, v) pairs: the dense-matrix baselines deduplicate,
    # so a multigraph would skew their num_edges
    rng = np.random.default_rng(0xBEEF)
    n = 60
    keys = np.unique(rng.integers(0, n * n, 400))
    src, dst = keys // n, keys % n
    order = np.lexsort((dst, src))
    return src[order], dst[order], n


@pytest.fixture(scope="module")
def built(edges):
    src, dst, n = edges
    return {kind: open_store(kind, src, dst, n) for kind in available_stores()}


class TestRegistry:
    def test_builtin_kinds_present(self):
        kinds = available_stores()
        for kind in ("csr", "csr-serial", "packed", "gap", "disk", "sharded",
                     "adjlist", "edgelist", "edgelist-unsorted",
                     "adjmatrix", "bitmatrix", "k2tree", "compact",
                     "reordered", "lsm"):
            assert kind in kinds

    def test_unknown_kind_lists_known(self):
        with pytest.raises(ValidationError, match="unknown store kind"):
            open_store("btree", None, None, 0)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError):
            register_store("csr", lambda *a, **k: None, "dup")

    def test_replace_and_custom_kind(self, edges):
        src, dst, n = edges
        spec = register_store(
            "test-custom", lambda s, d, n, **k: open_store("csr", s, d, n),
            "adapter for the conformance test", replace=True,
        )
        try:
            assert get_store_spec("test-custom") is spec
            store = open_store("test-custom", src, dst, n)
            assert store.num_edges == len(src)
        finally:
            from repro import stores as _stores

            _stores._REGISTRY.pop("test-custom", None)

    def test_executor_accepted_everywhere(self, edges):
        """Every registered builder takes executor= (used or ignored)."""
        from repro.parallel import SerialExecutor

        src, dst, n = edges
        for kind in available_stores():
            store = open_store(kind, src, dst, n, executor=SerialExecutor())
            assert store.num_edges >= 0

    def test_sharded_nested_inner_kind(self, edges):
        src, dst, n = edges
        store = open_store(
            "sharded", src, dst, n, shards=2, inner="gap", partitioner="hash"
        )
        assert store.shards[0].gap_encoded

    def test_lsm_nested_inner_kind(self, edges):
        src, dst, n = edges
        store = open_store("lsm", src, dst, n, inner="gap")
        assert store.segments[0].gap_encoded

    @pytest.mark.parametrize("outer,opts", [
        ("sharded", {"shards": 2}),
        ("lsm", {}),
        ("reordered", {}),
    ])
    def test_unknown_nested_inner_kind_names_composite(self, edges, outer, opts):
        """An unknown inner= fails with one line naming the composite
        it was nested in and listing the known kinds."""
        src, dst, n = edges
        with pytest.raises(
            ValidationError,
            match=f"unknown inner store kind 'btree' for {outer} store",
        ) as excinfo:
            open_store(outer, src, dst, n, inner="btree", **opts)
        assert "known:" in str(excinfo.value)
        assert "\n" not in str(excinfo.value).strip()

    def test_old_constructors_still_work(self, edges):
        """The registry is additive — direct construction is untouched."""
        from repro.csr import BitPackedCSR, build_csr_serial

        src, dst, n = edges
        g = build_csr_serial(src, dst, n)
        packed = BitPackedCSR.from_csr(g)
        assert packed.num_edges == g.num_edges == len(src)


class TestProtocolConformance:
    """Every registered kind satisfies the GraphStore contract."""

    @pytest.mark.parametrize("kind", sorted(
        # module-scope fixture can't parametrise itself; keep in sync
        # via the assertion inside test_builtin_kinds_present
        ["csr", "csr-serial", "packed", "gap", "disk", "sharded", "adjlist",
         "edgelist", "edgelist-unsorted", "adjmatrix", "bitmatrix", "k2tree",
         "compact", "reordered", "lsm"]
    ))
    def test_kind(self, built, edges, kind):
        src, dst, n = edges
        store = built[kind]
        assert isinstance(store, GraphStore)
        assert int(store.num_nodes) == n
        assert int(store.num_edges) == len(src)
        assert store.memory_bytes() > 0

        caps = capabilities(store)
        rng = np.random.default_rng(kind.encode()[0])
        us = rng.integers(0, n, 50)

        # scalar surface: neighbors dtype matches the declared row dtype
        row = store.neighbors(int(us[0]))
        assert row.dtype == caps.row_dtype
        assert store.degree(int(us[0])) == row.shape[0]

        # batch surface invariants (native or fallback)
        flat, offs = neighbors_batch(store, us, caps)
        assert flat.dtype == caps.row_dtype
        assert offs.dtype == np.int64
        assert offs.shape == (len(us) + 1,)
        assert int(offs[0]) == 0
        assert np.all(np.diff(offs) >= 0)
        assert int(offs[-1]) == flat.shape[0]
        for i, u in enumerate(us.tolist()):
            assert np.array_equal(flat[offs[i]: offs[i + 1]], store.neighbors(u))

    def test_registry_and_parametrisation_in_sync(self, built):
        assert sorted(built) == sorted(
            ["csr", "csr-serial", "packed", "gap", "disk", "sharded", "adjlist",
             "edgelist", "edgelist-unsorted", "adjmatrix", "bitmatrix",
             "k2tree", "compact", "reordered", "lsm"]
        ), "new registered kinds must be added to TestProtocolConformance"
