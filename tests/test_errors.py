"""The exception hierarchy contracts callers rely on."""

import pytest

from repro.errors import (
    CodecError,
    FieldOverflowError,
    FrameError,
    NotSortedError,
    QueryError,
    ReproError,
    ValidationError,
)


@pytest.mark.parametrize(
    "exc",
    [ValidationError, NotSortedError, CodecError, FieldOverflowError, QueryError, FrameError],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_validation_is_value_error():
    # generic ValueError handlers must also catch our validation failures
    assert issubclass(ValidationError, ValueError)
    assert issubclass(QueryError, ValueError)
    assert issubclass(FrameError, ValueError)


def test_not_sorted_is_validation():
    assert issubclass(NotSortedError, ValidationError)


def test_overflow_is_both_codec_and_overflow():
    assert issubclass(FieldOverflowError, CodecError)
    assert issubclass(FieldOverflowError, OverflowError)
