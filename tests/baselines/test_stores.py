"""Baseline stores: identical query answers, honest memory accounting."""

import numpy as np
import pytest

from repro.baselines import (
    AdjacencyListStore,
    AdjacencyMatrixStore,
    BitMatrixStore,
    EdgeListStore,
    UnsortedEdgeListStore,
)
from repro.csr.builder import build_csr_serial
from repro.errors import QueryError, ValidationError
from repro.query.stores import GraphStore

STORE_CLASSES = [
    EdgeListStore,
    UnsortedEdgeListStore,
    AdjacencyListStore,
    AdjacencyMatrixStore,
    BitMatrixStore,
]


@pytest.fixture
def graph_and_edges(sorted_edges):
    src, dst, n = sorted_edges
    return build_csr_serial(src, dst, n), src, dst, n


@pytest.fixture(params=STORE_CLASSES, ids=lambda c: c.__name__)
def store(request, graph_and_edges):
    _, src, dst, n = graph_and_edges
    return request.param(src, dst, n)


class TestQueryAgreement:
    def test_protocol(self, store):
        assert isinstance(store, GraphStore)

    def test_has_edge_matches_csr(self, store, graph_and_edges, rng):
        graph, src, dst, n = graph_and_edges
        for _ in range(80):
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            assert store.has_edge(u, v) == graph.has_edge(u, v), (u, v)

    def test_neighbors_match_csr_as_sets(self, store, graph_and_edges):
        graph, _, _, n = graph_and_edges
        for u in range(0, n, 13):
            want = np.unique(graph.neighbors(u)).tolist()
            got = np.unique(np.asarray(store.neighbors(u), dtype=np.int64)).tolist()
            assert got == want

    def test_degree_bounds_check(self, store):
        with pytest.raises(QueryError):
            store.neighbors(store.num_nodes)
        with pytest.raises(QueryError):
            store.degree(-1)


class TestDegreeSemantics:
    def test_multigraph_degree_preserved_by_list_stores(self):
        src = np.array([0, 0]); dst = np.array([1, 1])
        for cls in (EdgeListStore, UnsortedEdgeListStore, AdjacencyListStore):
            assert cls(src, dst, 2).degree(0) == 2, cls.__name__

    def test_matrix_stores_dedupe(self):
        src = np.array([0, 0]); dst = np.array([1, 1])
        for cls in (AdjacencyMatrixStore, BitMatrixStore):
            store = cls(src, dst, 2)
            assert store.degree(0) == 1
            assert store.num_edges == 1


class TestMemoryOrdering:
    def test_matrix_biggest_packed_smallest(self, graph_and_edges, rng):
        from repro.csr.builder import ensure_sorted
        from repro.csr.packed import BitPackedCSR

        graph, src, dst, n = graph_and_edges
        packed = BitPackedCSR.from_csr(graph)
        el = EdgeListStore(src, dst, n)
        assert packed.memory_bytes() < graph.memory_bytes()
        assert packed.memory_bytes() < el.memory_bytes()
        # the dense blow-up needs social-network sparsity (m << n^2)
        ns, ms = 3000, 6000
        s2, d2 = ensure_sorted(rng.integers(0, ns, ms), rng.integers(0, ns, ms))
        sparse_el = EdgeListStore(s2, d2, ns)
        sparse_dense = AdjacencyMatrixStore(s2, d2, ns)
        assert sparse_el.memory_bytes() < sparse_dense.memory_bytes()

    def test_bit_matrix_eighth_of_dense(self, graph_and_edges):
        _, src, dst, n = graph_and_edges
        dense = AdjacencyMatrixStore(src, dst, n)
        bits = BitMatrixStore(src, dst, n)
        assert bits.memory_bytes() <= dense.memory_bytes() // 8 + n


class TestDenseGuards:
    def test_node_cap_refuses_petabytes(self):
        with pytest.raises(ValidationError, match="refusing"):
            AdjacencyMatrixStore(np.array([0]), np.array([1]), 10**6)
        with pytest.raises(ValidationError, match="refusing"):
            BitMatrixStore(np.array([0]), np.array([1]), 10**7)

    def test_projection_without_allocation(self):
        # the paper's Friendster arithmetic: 65M nodes, "about 30.02
        # Petabytes" — which matches a dense matrix of 8-byte cells
        from repro.analysis.memory import projected_dense_matrix_bytes

        n = 65_608_366
        pb = projected_dense_matrix_bytes(n, bits_per_cell=64) / 1000**5
        assert 28 < pb < 36
        assert BitMatrixStore.projected_bytes(n) > 400 * 1024**4
        assert AdjacencyMatrixStore.projected_bytes(n) == n * n


class TestSortedVsUnsorted:
    def test_same_answers(self, graph_and_edges, rng):
        _, src, dst, n = graph_and_edges
        fast = EdgeListStore(src, dst, n)
        slow = UnsortedEdgeListStore(src, dst, n)
        for _ in range(40):
            u = int(rng.integers(0, n)); v = int(rng.integers(0, n))
            assert fast.has_edge(u, v) == slow.has_edge(u, v)
            assert fast.degree(u) == slow.degree(u)
