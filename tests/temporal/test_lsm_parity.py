"""Temporal logs vs LsmStore on one edge stream (ISSUE 7 satellite).

The temporal baselines treat events as *toggles*: an edge is active at
frame *f* iff it toggled an odd number of times at ``t <= f``.  An
:class:`LsmStore` replaying the same stream as checked writes —
``delete if present else insert`` — must land in exactly that state,
tying the mutable serving store to the paper's temporal semantics.
"""

import numpy as np
import pytest

from repro.lsm import build_lsm_store
from repro.temporal.edgelog import EdgeLog
from repro.temporal.evelog import EveLog
from repro.temporal.events import EventList


@pytest.fixture
def stream(rng):
    n, nev, frames = 30, 600, 6
    return EventList.from_unsorted(
        rng.integers(0, n, nev),
        rng.integers(0, n, nev),
        rng.integers(0, frames, nev),
        n,
    )


def _toggle(store, u, v):
    if store.has_edge(u, v):
        assert store.delete_edge(u, v)
    else:
        assert store.insert_edge(u, v)


@pytest.mark.parametrize("log_cls", [EveLog, EdgeLog],
                         ids=["evelog", "edgelog"])
def test_lsm_replay_matches_temporal_log(stream, log_cls):
    log = log_cls(stream)
    store = build_lsm_store([], [], stream.num_nodes, compact_watermark=200)
    applied = 0
    for f in range(stream.num_frames):
        in_frame = stream.t == f
        # EventList is sorted by (t, u, v); order within a frame is
        # irrelevant for parity but keep it for determinism
        for u, v in zip(stream.u[in_frame].tolist(),
                        stream.v[in_frame].tolist()):
            _toggle(store, u, v)
            applied += 1
            store.maybe_compact()
        for u in range(stream.num_nodes):
            want = np.sort(log.neighbors_at(u, f))
            assert store.neighbors(u).tolist() == want.tolist(), (
                f"row {u} diverged at frame {f}"
            )
    assert applied == len(stream)
    assert store.stats().compactions >= 1, "watermark never tripped"


def test_lsm_point_queries_match_both_logs(stream, rng):
    eve, edge = EveLog(stream), EdgeLog(stream)
    store = build_lsm_store([], [], stream.num_nodes)
    f = stream.num_frames - 1
    upto = stream.t <= f
    for u, v in zip(stream.u[upto].tolist(), stream.v[upto].tolist()):
        _toggle(store, u, v)
    for _ in range(150):
        u = int(rng.integers(0, stream.num_nodes))
        v = int(rng.integers(0, stream.num_nodes))
        want = eve.edge_active(u, v, f)
        assert edge.edge_active(u, v, f) == want
        assert store.has_edge(u, v) == want


def test_final_frame_replay_equals_compacted_store(stream):
    """Compaction preserves the replayed temporal state bit-exactly."""
    edge = EdgeLog(stream)
    store = build_lsm_store([], [], stream.num_nodes)
    for u, v in zip(stream.u.tolist(), stream.v.tolist()):
        _toggle(store, u, v)
    f = stream.num_frames - 1
    store.compact()
    assert len(store.memtable) == 0
    for u in range(stream.num_nodes):
        assert store.neighbors(u).tolist() == np.sort(
            edge.neighbors_at(u, f)
        ).tolist()
