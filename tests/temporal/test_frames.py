"""Frame algebra: toggles, snapshots, frame CSRs."""

import numpy as np
import pytest

from repro.errors import FrameError
from repro.temporal.events import EventList, encode_keys, sym_diff_sorted
from repro.temporal.frames import (
    csr_from_keys,
    frame_snapshots,
    frame_toggles,
    full_frame_csrs,
    snapshot_to_csr,
)


@pytest.fixture
def stream(rng):
    n, nev, frames = 40, 800, 9
    return EventList.from_unsorted(
        rng.integers(0, n, nev),
        rng.integers(0, n, nev),
        rng.integers(0, frames, nev),
        n,
    )


class TestToggles:
    def test_one_per_frame(self, stream):
        toggles = frame_toggles(stream)
        assert len(toggles) == stream.num_frames

    def test_within_frame_parity(self):
        # (0,1) appears twice in frame 0 -> no toggle
        ev = EventList(np.array([0, 0, 1]), np.array([1, 1, 0]), np.array([0, 0, 0]), 2)
        toggles = frame_toggles(ev)
        assert toggles[0].tolist() == [1 << 32]


class TestSnapshots:
    def test_cumulative_xor_matches_oracle(self, stream):
        snaps = frame_snapshots(stream)
        for f in range(stream.num_frames):
            assert snaps[f].tolist() == stream.active_keys_at(f).tolist()

    def test_snapshot_is_xor_of_toggles(self, stream):
        toggles = frame_toggles(stream)
        acc = np.zeros(0, dtype=np.uint64)
        for f, t in enumerate(toggles):
            acc = sym_diff_sorted(acc, t)
            assert acc.tolist() == frame_snapshots(stream)[f].tolist()
            if f > 2:
                break


class TestCsrFromKeys:
    def test_structure(self):
        keys = encode_keys(np.array([0, 0, 2]), np.array([1, 3, 2]))
        g = csr_from_keys(np.sort(keys), 4)
        assert g.neighbors(0).tolist() == [1, 3]
        assert g.neighbors(2).tolist() == [2]
        assert g.degree(1) == 0

    def test_empty(self):
        g = csr_from_keys(np.zeros(0, dtype=np.uint64), 3)
        assert g.num_edges == 0 and g.num_nodes == 3


class TestSnapshotToCsr:
    def test_matches_manual(self, stream):
        f = stream.num_frames - 1
        g = snapshot_to_csr(stream, f)
        u, v = stream.active_edges_at(f)
        assert g.num_edges == u.shape[0]
        for uu, vv in zip(u.tolist()[:50], v.tolist()[:50]):
            assert g.has_edge(uu, vv)

    def test_frame_bounds(self, stream):
        with pytest.raises(FrameError):
            snapshot_to_csr(stream, stream.num_frames)


class TestFullFrameCsrs:
    def test_one_csr_per_frame_with_right_contents(self, stream):
        csrs = full_frame_csrs(stream)
        assert len(csrs) == stream.num_frames
        for f in (0, stream.num_frames // 2, stream.num_frames - 1):
            assert csrs[f] == snapshot_to_csr(stream, f)

    def test_total_memory_exceeds_any_single_frame(self, stream):
        csrs = full_frame_csrs(stream)
        total = sum(c.memory_bytes() for c in csrs)
        assert total > max(c.memory_bytes() for c in csrs)
