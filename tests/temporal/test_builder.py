"""Algorithm 5: the parallel TCSR builder vs the serial reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import SimulatedMachine
from repro.temporal.builder import build_tcsr, build_tcsr_serial
from repro.temporal.events import EventList
from repro.temporal.frames import frame_toggles, snapshot_to_csr


@pytest.fixture
def stream(rng):
    n, nev, frames = 50, 1500, 11
    return EventList.from_unsorted(
        rng.integers(0, n, nev),
        rng.integers(0, n, nev),
        rng.integers(0, frames, nev),
        n,
    )


class TestAgainstSerialReference:
    def test_identical_structures(self, stream, executor):
        ref = build_tcsr_serial(stream)
        got = build_tcsr(stream, executor)
        assert got.num_frames == ref.num_frames
        assert got.base == ref.base
        for a, b in zip(got.deltas, ref.deltas):
            assert a == b

    def test_deltas_equal_frame_toggles(self, stream):
        """Scan-then-difference must return the original toggles — the
        algebraic identity behind Algorithm 5 (module docs)."""
        tcsr = build_tcsr(stream, SimulatedMachine(6))
        toggles = frame_toggles(stream)
        for f in range(1, stream.num_frames):
            stored = tcsr.toggles(f)
            su, sv = stored.edges()
            from repro.temporal.events import encode_keys

            assert np.array_equal(np.sort(encode_keys(su, sv)), toggles[f])

    def test_snapshots_match_oracle(self, stream, executor):
        tcsr = build_tcsr(stream, executor)
        for f in (0, 4, stream.num_frames - 1):
            assert tcsr.snapshot(f) == snapshot_to_csr(stream, f)


class TestEdgeCases:
    def test_empty_stream(self, executor):
        ev = EventList(np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0, np.int64), 5)
        tcsr = build_tcsr(ev, executor)
        assert tcsr.num_frames == 1
        assert tcsr.base.num_edges == 0

    def test_single_frame(self, executor):
        ev = EventList(np.array([0, 1]), np.array([1, 0]), np.array([0, 0]), 2)
        tcsr = build_tcsr(ev, executor)
        assert tcsr.num_frames == 1
        assert tcsr.edge_active(0, 1, 0)

    def test_empty_middle_frames(self, executor):
        # events only in frames 0 and 4; 1-3 are empty deltas
        ev = EventList(
            np.array([0, 1]), np.array([1, 0]), np.array([0, 4]), 2
        )
        tcsr = build_tcsr(ev, executor)
        assert tcsr.num_frames == 5
        assert tcsr.edge_active(0, 1, 3)
        assert tcsr.edge_active(1, 0, 4)
        assert not tcsr.edge_active(1, 0, 3)

    def test_more_processors_than_frames_and_events(self):
        ev = EventList(np.array([0]), np.array([1]), np.array([0]), 2)
        tcsr = build_tcsr(ev, SimulatedMachine(64))
        assert tcsr.edge_active(0, 1, 0)

    def test_gap_encode_flag(self, stream):
        plain = build_tcsr(stream, SimulatedMachine(3))
        gap = build_tcsr(stream, SimulatedMachine(3), gap_encode=True)
        assert gap.base.gap_encoded
        for f in (0, stream.num_frames - 1):
            assert gap.snapshot(f) == plain.snapshot(f)

    def test_simulated_time_accrues(self, stream):
        machine = SimulatedMachine(4, record_trace=True)
        build_tcsr(stream, machine)
        labels = {rec.label for rec in machine.trace}
        assert {"tcsr:chunk-csr", "tcsr:overlap-merge", "tcsr:scan-local",
                "tcsr:scan-carry", "tcsr:scan-broadcast", "tcsr:differential"} <= labels


class TestPropertyEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(2, 12),  # nodes
        st.integers(0, 60),  # events
        st.integers(1, 6),  # frames
        st.integers(1, 20),  # processors
        st.integers(0, 2**31),
    )
    def test_any_stream_any_width(self, n, nev, frames, p, seed):
        rng = np.random.default_rng(seed)
        ev = EventList.from_unsorted(
            rng.integers(0, n, nev),
            rng.integers(0, n, nev),
            rng.integers(0, frames, nev),
            n,
        )
        got = build_tcsr(ev, SimulatedMachine(p))
        ref = build_tcsr_serial(ev)
        assert got.base == ref.base
        assert all(a == b for a, b in zip(got.deltas, ref.deltas))
