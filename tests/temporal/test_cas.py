"""CAS index: wavelet-tree temporal queries vs the brute-force oracle."""

import numpy as np
import pytest

from repro.errors import FrameError, QueryError
from repro.temporal.cas import CASIndex
from repro.temporal.events import EventList
from repro.temporal.queries import TemporalStore, batch_edge_active


@pytest.fixture
def stream(rng):
    n, nev, frames = 30, 700, 9
    return EventList.from_unsorted(
        rng.integers(0, n, nev),
        rng.integers(0, n, nev),
        rng.integers(0, frames, nev),
        n,
    )


@pytest.fixture
def cas(stream):
    return CASIndex(stream)


class TestCorrectness:
    def test_edge_active_matches_oracle(self, stream, cas, rng):
        for f in range(stream.num_frames):
            active = set(stream.active_keys_at(f).tolist())
            for _ in range(40):
                u = int(rng.integers(0, stream.num_nodes))
                v = int(rng.integers(0, stream.num_nodes))
                assert cas.edge_active(u, v, f) == ((u << 32 | v) in active)

    def test_neighbors_matches_oracle(self, stream, cas):
        for f in (0, 4, stream.num_frames - 1):
            u_act, v_act = stream.active_edges_at(f)
            for u in range(stream.num_nodes):
                want = sorted(v_act[u_act == u].tolist())
                assert cas.neighbors_at(u, f).tolist() == want, (u, f)

    def test_agrees_with_other_stores(self, stream, cas, rng):
        from repro.temporal import EdgeLog, EveLog

        other = EveLog(stream)
        third = EdgeLog(stream)
        qs = [
            (
                int(rng.integers(0, stream.num_nodes)),
                int(rng.integers(0, stream.num_nodes)),
                int(rng.integers(0, stream.num_frames)),
            )
            for _ in range(80)
        ]
        a = batch_edge_active(cas, qs)
        b = batch_edge_active(other, qs)
        c = batch_edge_active(third, qs)
        assert a.tolist() == b.tolist() == c.tolist()


class TestStructure:
    def test_protocol(self, cas):
        assert isinstance(cas, TemporalStore)

    def test_vertex_without_events(self, stream):
        cas = CASIndex(stream)
        # highest node id may have no outgoing events
        assert isinstance(cas.edge_active(stream.num_nodes - 1, 0, 0), bool)

    def test_within_frame_parity(self):
        ev = EventList(np.array([0, 0]), np.array([1, 1]), np.array([0, 0]), 2)
        cas = CASIndex(ev)
        assert not cas.edge_active(0, 1, 0)

    def test_empty_stream(self):
        ev = EventList(
            np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0, np.int64), 4
        )
        cas = CASIndex(ev)
        assert cas.num_frames == 0

    def test_bounds(self, cas, stream):
        with pytest.raises(QueryError):
            cas.edge_active(stream.num_nodes, 0, 0)
        with pytest.raises(QueryError):
            cas.edge_active(0, stream.num_nodes, 0)
        with pytest.raises(FrameError):
            cas.neighbors_at(0, stream.num_frames)

    def test_memory_reported(self, cas):
        assert cas.memory_bytes() > 0
        assert "events=" in repr(cas)
