"""TGCSA: suffix-array temporal index vs the oracle and peers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError, QueryError
from repro.temporal.contacts import ContactList
from repro.temporal.events import EventList
from repro.temporal.queries import TemporalStore, batch_edge_active
from repro.temporal.tgcsa import TGCSA, suffix_array


class TestSuffixArray:
    def test_known_string(self):
        # banana (as ints): suffixes sorted -> 5,3,1,0,4,2
        seq = np.array([1, 0, 3, 0, 3, 0])  # b=1, a=0, n=3
        assert suffix_array(seq).tolist() == [5, 3, 1, 0, 4, 2]

    def test_empty_and_single(self):
        assert suffix_array(np.zeros(0, dtype=np.int64)).tolist() == []
        assert suffix_array(np.array([7])).tolist() == [0]

    def test_all_equal(self):
        # equal symbols: longest suffix is largest, so reverse order
        assert suffix_array(np.zeros(5, dtype=np.int64)).tolist() == [4, 3, 2, 1, 0]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 6), max_size=80))
    def test_property_matches_brute_force(self, raw):
        seq = np.asarray(raw, dtype=np.int64)
        sa = suffix_array(seq)
        brute = sorted(range(len(raw)), key=lambda i: raw[i:])
        assert sa.tolist() == brute


@pytest.fixture
def stream(rng):
    n, nev, frames = 24, 500, 7
    return EventList.from_unsorted(
        rng.integers(0, n, nev),
        rng.integers(0, n, nev),
        rng.integers(0, frames, nev),
        n,
    )


@pytest.fixture
def tgcsa(stream):
    return TGCSA.from_events(stream)


class TestQueries:
    def test_edge_active_matches_oracle(self, stream, tgcsa, rng):
        for f in range(stream.num_frames):
            active = set(stream.active_keys_at(f).tolist())
            for _ in range(40):
                u = int(rng.integers(0, stream.num_nodes))
                v = int(rng.integers(0, stream.num_nodes))
                assert tgcsa.edge_active(u, v, f) == ((u << 32 | v) in active)

    def test_neighbors_matches_oracle(self, stream, tgcsa):
        for f in (0, 3, stream.num_frames - 1):
            u_act, v_act = stream.active_edges_at(f)
            for u in range(stream.num_nodes):
                want = sorted(v_act[u_act == u].tolist())
                assert tgcsa.neighbors_at(u, f).tolist() == want, (u, f)

    def test_agrees_with_other_stores(self, stream, tgcsa, rng):
        from repro.temporal import CASIndex

        cas = CASIndex(stream)
        qs = [
            (
                int(rng.integers(0, stream.num_nodes)),
                int(rng.integers(0, stream.num_nodes)),
                int(rng.integers(0, stream.num_frames)),
            )
            for _ in range(60)
        ]
        assert (
            batch_edge_active(tgcsa, qs).tolist()
            == batch_edge_active(cas, qs).tolist()
        )

    def test_protocol(self, tgcsa):
        assert isinstance(tgcsa, TemporalStore)

    def test_bounds(self, tgcsa, stream):
        with pytest.raises(QueryError):
            tgcsa.edge_active(stream.num_nodes, 0, 0)
        with pytest.raises(FrameError):
            tgcsa.neighbors_at(0, stream.num_frames)


class TestStructure:
    def test_open_ended_contacts(self):
        """An unmatched toggle stays active through the last frame."""
        ev = EventList(np.array([0]), np.array([1]), np.array([2]), 2)
        tg = TGCSA.from_events(ev)
        assert not tg.edge_active(0, 1, 0)
        assert tg.edge_active(0, 1, 2)

    def test_direct_contact_construction(self):
        contacts = ContactList(
            np.array([0, 1]), np.array([1, 0]),
            np.array([0, 2]), np.array([3, 4]), 2, 4,
        )
        tg = TGCSA(contacts)
        assert tg.edge_active(0, 1, 1)
        assert not tg.edge_active(0, 1, 3)
        assert tg.edge_active(1, 0, 3)

    def test_empty_contacts(self):
        contacts = ContactList(
            np.zeros(0, np.int64), np.zeros(0, np.int64),
            np.zeros(0, np.int64), np.zeros(0, np.int64), 5, 3,
        )
        tg = TGCSA(contacts)
        assert not tg.edge_active(0, 1, 0)
        assert tg.neighbors_at(0, 0).size == 0

    def test_memory_and_compression_reporting(self, tgcsa):
        assert tgcsa.memory_bytes() > 0
        compressed = tgcsa.psi_compressed_bytes()
        assert 0 < compressed < tgcsa._psi.nbytes
