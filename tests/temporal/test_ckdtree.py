"""ck^d-tree: 4-D contact tree vs the oracle and peers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError, QueryError, ValidationError
from repro.temporal.ckdtree import CKDTree
from repro.temporal.contacts import ContactList
from repro.temporal.events import EventList
from repro.temporal.queries import TemporalStore, batch_edge_active


@pytest.fixture
def stream(rng):
    n, nev, frames = 26, 550, 7
    return EventList.from_unsorted(
        rng.integers(0, n, nev),
        rng.integers(0, n, nev),
        rng.integers(0, frames, nev),
        n,
    )


@pytest.fixture
def tree(stream):
    return CKDTree.from_events(stream)


class TestQueries:
    def test_edge_active_matches_oracle(self, stream, tree, rng):
        for f in range(stream.num_frames):
            active = set(stream.active_keys_at(f).tolist())
            for _ in range(40):
                u = int(rng.integers(0, stream.num_nodes))
                v = int(rng.integers(0, stream.num_nodes))
                assert tree.edge_active(u, v, f) == ((u << 32 | v) in active)

    def test_neighbors_matches_oracle(self, stream, tree):
        for f in (0, 3, stream.num_frames - 1):
            u_act, v_act = stream.active_edges_at(f)
            for u in range(stream.num_nodes):
                want = sorted(v_act[u_act == u].tolist())
                assert tree.neighbors_at(u, f).tolist() == want, (u, f)

    def test_agrees_with_tgcsa(self, stream, tree, rng):
        from repro.temporal import TGCSA

        peer = TGCSA.from_events(stream)
        qs = [
            (
                int(rng.integers(0, stream.num_nodes)),
                int(rng.integers(0, stream.num_nodes)),
                int(rng.integers(0, stream.num_frames)),
            )
            for _ in range(60)
        ]
        assert (
            batch_edge_active(tree, qs).tolist()
            == batch_edge_active(peer, qs).tolist()
        )

    def test_protocol(self, tree):
        assert isinstance(tree, TemporalStore)

    def test_bounds(self, tree, stream):
        with pytest.raises(QueryError):
            tree.edge_active(stream.num_nodes, 0, 0)
        with pytest.raises(QueryError):
            tree.edge_active(0, stream.num_nodes, 0)
        with pytest.raises(FrameError):
            tree.neighbors_at(0, stream.num_frames)


class TestStructure:
    def test_open_ended_contact(self):
        ev = EventList(np.array([0]), np.array([1]), np.array([2]), 2)
        tree = CKDTree.from_events(ev)
        assert not tree.edge_active(0, 1, 1)
        assert tree.edge_active(0, 1, 2)

    def test_interval_boundaries(self):
        # active exactly on [2, 5)
        contacts = ContactList(
            np.array([0]), np.array([1]), np.array([2]), np.array([5]), 2, 6
        )
        tree = CKDTree(contacts)
        expect = {0: False, 1: False, 2: True, 3: True, 4: True, 5: False}
        for f, want in expect.items():
            assert tree.edge_active(0, 1, f) == want, f

    def test_empty(self):
        contacts = ContactList(
            np.zeros(0, np.int64), np.zeros(0, np.int64),
            np.zeros(0, np.int64), np.zeros(0, np.int64), 4, 3,
        )
        tree = CKDTree(contacts)
        assert not tree.edge_active(0, 1, 0)
        assert tree.neighbors_at(0, 0).size == 0
        assert tree.bits_per_contact() == 0.0

    def test_size_cap(self):
        contacts = ContactList(
            np.array([0]), np.array([1]), np.array([0]), np.array([1]),
            2**16, 3,
        )
        with pytest.raises(ValidationError, match="2\\*\\*15"):
            CKDTree(contacts)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_property_matches_oracle(self, data):
        n = data.draw(st.integers(2, 10))
        frames = data.draw(st.integers(1, 6))
        nev = data.draw(st.integers(0, 40))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        ev = EventList.from_unsorted(
            rng.integers(0, n, nev), rng.integers(0, n, nev),
            rng.integers(0, frames, nev), n,
        )
        tree = CKDTree.from_events(ev)
        for f in range(ev.num_frames):
            active = set(ev.active_keys_at(f).tolist())
            for u in range(n):
                want = sorted(int(k & 0xFFFFFFFF) for k in active if (k >> 32) == u)
                assert tree.neighbors_at(u, f).tolist() == want
