"""Event streams, edge keys, parity semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError, NotSortedError, ValidationError
from repro.temporal.events import (
    EventList,
    decode_keys,
    encode_keys,
    parity_filter,
    sym_diff_sorted,
)


class TestKeys:
    def test_roundtrip(self, rng):
        u = rng.integers(0, 2**31, 1000)
        v = rng.integers(0, 2**31, 1000)
        ku, kv = decode_keys(encode_keys(u, v))
        assert np.array_equal(ku, u) and np.array_equal(kv, v)

    def test_sorts_like_pairs(self, rng):
        u = rng.integers(0, 100, 500)
        v = rng.integers(0, 100, 500)
        keys = encode_keys(u, v)
        order_keys = np.argsort(keys, kind="stable")
        order_pairs = np.lexsort((v, u))
        assert np.array_equal(
            keys[order_keys], keys[order_pairs]
        )

    def test_rejects_huge_ids(self):
        with pytest.raises(ValidationError):
            encode_keys(np.array([2**32]), np.array([0]))


class TestParityFilter:
    def test_odd_survives_even_drops(self):
        keys = np.array([5, 5, 7, 7, 7, 9], dtype=np.uint64)
        assert parity_filter(keys).tolist() == [7, 9]

    def test_empty(self):
        assert parity_filter(np.zeros(0, dtype=np.uint64)).shape == (0,)

    @given(st.lists(st.integers(0, 30), max_size=200))
    def test_property_matches_counting(self, raw):
        keys = np.asarray(raw, dtype=np.uint64)
        want = sorted(k for k in set(raw) if raw.count(k) % 2 == 1)
        assert parity_filter(keys).tolist() == want


class TestSymDiff:
    def test_basic(self):
        a = np.array([1, 3, 5], dtype=np.uint64)
        b = np.array([3, 4], dtype=np.uint64)
        assert sym_diff_sorted(a, b).tolist() == [1, 4, 5]

    def test_identity_and_self_inverse(self, rng):
        a = np.unique(rng.integers(0, 1000, 300).astype(np.uint64))
        empty = np.zeros(0, dtype=np.uint64)
        assert sym_diff_sorted(a, empty).tolist() == a.tolist()
        assert sym_diff_sorted(empty, a).tolist() == a.tolist()
        assert sym_diff_sorted(a, a).shape == (0,)

    @given(
        st.sets(st.integers(0, 50)),
        st.sets(st.integers(0, 50)),
    )
    def test_property_matches_set_xor(self, sa, sb):
        a = np.asarray(sorted(sa), dtype=np.uint64)
        b = np.asarray(sorted(sb), dtype=np.uint64)
        assert sym_diff_sorted(a, b).tolist() == sorted(sa ^ sb)


class TestEventList:
    def test_from_unsorted_orders_by_t_u_v(self):
        ev = EventList.from_unsorted([1, 0, 2], [1, 2, 0], [2, 0, 2], 3)
        assert ev.t.tolist() == [0, 2, 2]
        assert ev.u.tolist() == [0, 1, 2]

    def test_rejects_unsorted_times(self):
        with pytest.raises(NotSortedError):
            EventList(np.array([0, 0]), np.array([1, 1]), np.array([1, 0]), 2)

    def test_rejects_out_of_range_nodes(self):
        with pytest.raises(ValidationError):
            EventList(np.array([5]), np.array([0]), np.array([0]), 3)

    def test_rejects_negative_frames(self):
        with pytest.raises(ValidationError):
            EventList(np.array([0]), np.array([0]), np.array([-1]), 2)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            EventList(np.array([0]), np.array([0, 1]), np.array([0]), 2)

    def test_num_frames(self):
        ev = EventList(np.array([0]), np.array([1]), np.array([4]), 2)
        assert ev.num_frames == 5
        empty = EventList(np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0, np.int64), 2)
        assert empty.num_frames == 0

    def test_frame_offsets_and_slices(self):
        ev = EventList(
            np.array([0, 1, 0, 1]),
            np.array([1, 0, 1, 0]),
            np.array([0, 0, 2, 2]),
            2,
        )
        assert ev.frame_offsets().tolist() == [0, 2, 2, 4]
        u, v = ev.frame_slice(0)
        assert u.tolist() == [0, 1]
        u, v = ev.frame_slice(1)
        assert u.size == 0
        with pytest.raises(FrameError):
            ev.frame_slice(3)

    def test_active_keys_parity(self):
        # edge (0,1) toggled at frames 0 and 2; (1,0) only at 1
        ev = EventList(
            np.array([0, 1, 0]),
            np.array([1, 0, 1]),
            np.array([0, 1, 2]),
            2,
        )
        assert ev.active_keys_at(0).tolist() == [1]  # (0,1) active
        assert sorted(ev.active_keys_at(1).tolist()) == [1, 1 << 32]
        assert ev.active_keys_at(2).tolist() == [1 << 32]  # (0,1) off again

    def test_active_edges_decode(self):
        ev = EventList(np.array([3]), np.array([4]), np.array([0]), 5)
        u, v = ev.active_edges_at(0)
        assert u.tolist() == [3] and v.tolist() == [4]
