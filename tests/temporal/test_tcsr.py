"""TemporalCSR container queries against the brute-force oracle."""

import numpy as np
import pytest

from repro.errors import FrameError, QueryError, ValidationError
from repro.parallel import SimulatedMachine
from repro.temporal.builder import build_tcsr
from repro.temporal.events import EventList
from repro.temporal.frames import full_frame_csrs


@pytest.fixture
def stream(rng):
    n, nev, frames = 30, 600, 8
    return EventList.from_unsorted(
        rng.integers(0, n, nev),
        rng.integers(0, n, nev),
        rng.integers(0, frames, nev),
        n,
    )


@pytest.fixture
def tcsr(stream):
    return build_tcsr(stream, SimulatedMachine(4))


class TestEdgeActive:
    def test_matches_oracle_everywhere(self, stream, tcsr, rng):
        for f in range(stream.num_frames):
            active = set(stream.active_keys_at(f).tolist())
            for _ in range(40):
                u = int(rng.integers(0, stream.num_nodes))
                v = int(rng.integers(0, stream.num_nodes))
                assert tcsr.edge_active(u, v, f) == ((u << 32 | v) in active)

    def test_toggle_deactivates(self):
        ev = EventList(np.array([0, 0]), np.array([1, 1]), np.array([0, 1]), 2)
        tcsr = build_tcsr(ev)
        assert tcsr.edge_active(0, 1, 0)
        assert not tcsr.edge_active(0, 1, 1)

    def test_bounds(self, tcsr):
        with pytest.raises(FrameError):
            tcsr.edge_active(0, 1, tcsr.num_frames)
        with pytest.raises(QueryError):
            tcsr.edge_active(99, 0, 0)


class TestNeighborsAt:
    def test_matches_oracle(self, stream, tcsr):
        for f in (0, 3, stream.num_frames - 1):
            u_act, v_act = stream.active_edges_at(f)
            for u in range(stream.num_nodes):
                want = sorted(v_act[u_act == u].tolist())
                assert tcsr.neighbors_at(u, f).tolist() == want

    def test_bounds(self, tcsr):
        with pytest.raises(QueryError):
            tcsr.neighbors_at(-1, 0)


class TestSnapshotAndToggles:
    def test_snapshot_frame_zero_is_base(self, tcsr):
        assert tcsr.snapshot(0) == tcsr.base.to_csr()

    def test_toggles_frame_zero_rejected(self, tcsr):
        with pytest.raises(FrameError, match="snapshot"):
            tcsr.toggles(0)

    def test_delta_edge_counts(self, tcsr):
        counts = tcsr.delta_edge_counts()
        assert counts.shape == (tcsr.num_frames - 1,)
        for f in range(1, tcsr.num_frames):
            assert counts[f - 1] == tcsr.deltas[f - 1].num_edges


class TestHistory:
    def test_history_matches_pointwise(self, stream, tcsr, rng):
        for _ in range(20):
            u = int(rng.integers(0, stream.num_nodes))
            v = int(rng.integers(0, stream.num_nodes))
            history = tcsr.edge_history(u, v)
            assert history.shape == (tcsr.num_frames,)
            for f in range(tcsr.num_frames):
                assert history[f] == tcsr.edge_active(u, v, f), (u, v, f)

    def test_lifetime(self, tcsr, stream, rng):
        u = int(stream.u[0])
        v = int(stream.v[0])
        assert tcsr.edge_lifetime(u, v) == int(tcsr.edge_history(u, v).sum())

    def test_churn_rate(self, tcsr):
        rate = tcsr.churn_rate()
        assert rate == pytest.approx(float(tcsr.delta_edge_counts().mean()))

    def test_history_bounds(self, tcsr):
        with pytest.raises(QueryError):
            tcsr.edge_history(tcsr.num_nodes, 0)


class TestMemory:
    def test_differential_smaller_than_full_frames(self, stream, tcsr):
        """Section IV's motivation: storing diffs beats full per-frame
        CSRs whenever churn is below 100%."""
        full = sum(c.memory_bytes() for c in full_frame_csrs(stream))
        assert tcsr.memory_bytes() < full

    def test_node_count_consistency_enforced(self, tcsr):
        with pytest.raises(ValidationError):
            from repro.temporal.tcsr import TemporalCSR

            TemporalCSR(tcsr.num_nodes + 5, tcsr.base, tcsr.deltas)
