"""CET index: time-ordered wavelet queries vs the oracle and peers."""

import numpy as np
import pytest

from repro.errors import FrameError, QueryError
from repro.temporal.cas import CASIndex
from repro.temporal.cet import CETIndex
from repro.temporal.events import EventList
from repro.temporal.queries import TemporalStore, batch_edge_active


@pytest.fixture
def stream(rng):
    n, nev, frames = 28, 650, 8
    return EventList.from_unsorted(
        rng.integers(0, n, nev),
        rng.integers(0, n, nev),
        rng.integers(0, frames, nev),
        n,
    )


@pytest.fixture
def cet(stream):
    return CETIndex(stream)


class TestCorrectness:
    def test_edge_active_matches_oracle(self, stream, cet, rng):
        for f in range(stream.num_frames):
            active = set(stream.active_keys_at(f).tolist())
            for _ in range(40):
                u = int(rng.integers(0, stream.num_nodes))
                v = int(rng.integers(0, stream.num_nodes))
                assert cet.edge_active(u, v, f) == ((u << 32 | v) in active)

    def test_neighbors_matches_oracle(self, stream, cet):
        for f in (0, 3, stream.num_frames - 1):
            u_act, v_act = stream.active_edges_at(f)
            for u in range(stream.num_nodes):
                want = sorted(v_act[u_act == u].tolist())
                assert cet.neighbors_at(u, f).tolist() == want, (u, f)

    def test_agrees_with_cas(self, stream, cet, rng):
        cas = CASIndex(stream)
        qs = [
            (
                int(rng.integers(0, stream.num_nodes)),
                int(rng.integers(0, stream.num_nodes)),
                int(rng.integers(0, stream.num_frames)),
            )
            for _ in range(60)
        ]
        assert batch_edge_active(cet, qs).tolist() == batch_edge_active(cas, qs).tolist()


class TestStructure:
    def test_protocol(self, cet):
        assert isinstance(cet, TemporalStore)

    def test_never_seen_edge(self, stream, cet):
        """An edge absent from the whole stream short-circuits."""
        # craft an edge key guaranteed absent: self-loop of an unused pair
        for u in range(stream.num_nodes):
            for v in range(stream.num_nodes):
                if not any(
                    (stream.u == u) & (stream.v == v)
                ):
                    assert not cet.edge_active(u, v, stream.num_frames - 1)
                    return

    def test_bounds(self, cet, stream):
        with pytest.raises(QueryError):
            cet.edge_active(stream.num_nodes, 0, 0)
        with pytest.raises(QueryError):
            cet.edge_active(0, stream.num_nodes, 0)
        with pytest.raises(FrameError):
            cet.neighbors_at(0, -1)

    def test_within_frame_parity(self):
        ev = EventList(np.array([0, 0]), np.array([1, 1]), np.array([0, 0]), 2)
        assert not CETIndex(ev).edge_active(0, 1, 0)

    def test_memory_reported(self, cet):
        assert cet.memory_bytes() > 0


class TestWaveletSymbolRange:
    def test_distinct_with_symbol_bounds(self, rng):
        from repro.bitpack.wavelet import WaveletTree

        seq = rng.integers(0, 50, 800)
        wt = WaveletTree(seq, sigma=50)
        lo, hi, s_lo, s_hi = 100, 700, 13, 31
        got = wt.distinct_in_range(lo, hi, symbol_lo=s_lo, symbol_hi=s_hi)
        window = seq[lo:hi]
        window = window[(window >= s_lo) & (window < s_hi)]
        vals, counts = np.unique(window, return_counts=True)
        assert got == list(zip(vals.tolist(), counts.tolist()))

    def test_empty_symbol_range(self, rng):
        from repro.bitpack.wavelet import WaveletTree

        wt = WaveletTree(rng.integers(0, 8, 100), sigma=8)
        assert wt.distinct_in_range(0, 100, symbol_lo=5, symbol_hi=5) == []
