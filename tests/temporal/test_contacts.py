"""Contacts (interval view) vs the toggle-stream semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError, ValidationError
from repro.temporal.contacts import (
    ContactList,
    contacts_from_events,
    events_from_contacts,
)
from repro.temporal.events import EventList


@pytest.fixture
def stream(rng):
    n, nev, frames = 25, 400, 9
    return EventList.from_unsorted(
        rng.integers(0, n, nev),
        rng.integers(0, n, nev),
        rng.integers(0, frames, nev),
        n,
    )


class TestContactsFromEvents:
    def test_pairing_rule(self):
        # toggles at frames 1, 3, 5: active [1,3) and [5, end)
        ev = EventList(
            np.array([0, 0, 0]), np.array([1, 1, 1]), np.array([1, 3, 5]), 2
        )
        contacts = contacts_from_events(ev)
        assert len(contacts) == 2
        assert contacts.ts.tolist() == [1, 5]
        assert contacts.te.tolist() == [3, ev.num_frames]

    def test_within_frame_parity_cancels(self):
        ev = EventList(np.array([0, 0]), np.array([1, 1]), np.array([2, 2]), 2)
        assert len(contacts_from_events(ev)) == 0

    def test_agrees_with_oracle_everywhere(self, stream, rng):
        contacts = contacts_from_events(stream)
        for f in range(stream.num_frames):
            active = set(stream.active_keys_at(f).tolist())
            for _ in range(30):
                u = int(rng.integers(0, stream.num_nodes))
                v = int(rng.integers(0, stream.num_nodes))
                assert contacts.active_at(u, v, f) == ((u << 32 | v) in active), (u, v, f)

    def test_empty_stream(self):
        ev = EventList(np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0, np.int64), 3)
        assert len(contacts_from_events(ev)) == 0


class TestRoundTrip:
    def test_events_contacts_events(self, stream):
        contacts = contacts_from_events(stream)
        back = events_from_contacts(contacts)
        # parity-equivalent: same active set at every frame
        for f in range(stream.num_frames):
            assert np.array_equal(back.active_keys_at(f), stream.active_keys_at(f)), f

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
        max_size=60,
    ))
    def test_property_parity_equivalence(self, triples):
        if not triples:
            return
        u, v, t = (np.array(x, dtype=np.int64) for x in zip(*triples))
        ev = EventList.from_unsorted(u, v, t, 6)
        back = events_from_contacts(contacts_from_events(ev))
        for f in range(ev.num_frames):
            assert np.array_equal(back.active_keys_at(f), ev.active_keys_at(f)), f


class TestContactList:
    def test_durations_and_lifetime(self):
        contacts = ContactList(
            np.array([0, 0]), np.array([1, 1]),
            np.array([0, 4]), np.array([2, 6]), 2, 6,
        )
        assert contacts.durations().tolist() == [2, 2]
        assert contacts.lifetime_of(0, 1) == 4
        assert contacts.lifetime_of(1, 0) == 0

    def test_validation(self):
        with pytest.raises(ValidationError, match="ts < te"):
            ContactList(np.array([0]), np.array([1]), np.array([3]), np.array([3]), 2, 5)
        with pytest.raises(ValidationError, match="frame range"):
            ContactList(np.array([0]), np.array([1]), np.array([0]), np.array([9]), 2, 5)
        with pytest.raises(ValidationError, match="ids"):
            ContactList(np.array([7]), np.array([1]), np.array([0]), np.array([1]), 2, 5)
        with pytest.raises(ValidationError, match="equal length"):
            ContactList(np.array([0]), np.array([1, 1]), np.array([0]), np.array([1]), 2, 5)

    def test_active_at_bounds(self):
        contacts = ContactList(
            np.array([0]), np.array([1]), np.array([0]), np.array([2]), 2, 4
        )
        with pytest.raises(FrameError):
            contacts.active_at(0, 1, 4)
