"""Batched temporal queries across all three temporal stores."""

import numpy as np
import pytest

from repro.parallel import SimulatedMachine
from repro.temporal.builder import build_tcsr
from repro.temporal.edgelog import EdgeLog
from repro.temporal.evelog import EveLog
from repro.temporal.events import EventList
from repro.temporal.queries import TemporalStore, batch_edge_active, batch_neighbors_at


@pytest.fixture
def stream(rng):
    n, nev, frames = 20, 300, 6
    return EventList.from_unsorted(
        rng.integers(0, n, nev),
        rng.integers(0, n, nev),
        rng.integers(0, frames, nev),
        n,
    )


@pytest.fixture(params=["tcsr", "evelog", "edgelog", "cas", "cet", "tgcsa", "ckdtree"])
def store(request, stream):
    if request.param == "tcsr":
        return build_tcsr(stream)
    if request.param == "evelog":
        return EveLog(stream)
    if request.param == "cas":
        from repro.temporal import CASIndex

        return CASIndex(stream)
    if request.param == "cet":
        from repro.temporal import CETIndex

        return CETIndex(stream)
    if request.param == "tgcsa":
        from repro.temporal import TGCSA

        return TGCSA.from_events(stream)
    if request.param == "ckdtree":
        from repro.temporal import CKDTree

        return CKDTree.from_events(stream)
    return EdgeLog(stream)


class TestProtocol:
    def test_all_stores_satisfy_protocol(self, store):
        assert isinstance(store, TemporalStore)


class TestBatchedQueries:
    def test_edge_active_batch_matches_pointwise(self, stream, store, rng, executor):
        qs = [
            (
                int(rng.integers(0, stream.num_nodes)),
                int(rng.integers(0, stream.num_nodes)),
                int(rng.integers(0, stream.num_frames)),
            )
            for _ in range(40)
        ]
        got = batch_edge_active(store, qs, executor)
        for (u, v, f), r in zip(qs, got):
            assert r == store.edge_active(u, v, f)

    def test_neighbors_batch_matches_pointwise(self, stream, store, rng):
        qs = [
            (int(rng.integers(0, stream.num_nodes)), int(rng.integers(0, stream.num_frames)))
            for _ in range(30)
        ]
        got = batch_neighbors_at(store, qs, SimulatedMachine(5))
        for (u, f), row in zip(qs, got):
            assert sorted(row.tolist()) == sorted(store.neighbors_at(u, f).tolist())

    def test_empty_batches(self, store, executor):
        assert batch_edge_active(store, [], executor).shape == (0,)
        assert batch_neighbors_at(store, [], executor) == []

    def test_query_order_preserved_with_more_procs_than_queries(self, stream, store):
        qs = [(0, 0, 0), (1, 1, 0)]
        got = batch_edge_active(store, qs, SimulatedMachine(16))
        assert got[0] == store.edge_active(0, 0, 0)
        assert got[1] == store.edge_active(1, 1, 0)
