"""EveLog and EdgeLog baselines: same answers as TCSR, different costs."""

import numpy as np
import pytest

from repro.errors import FrameError, QueryError
from repro.temporal.edgelog import EdgeLog
from repro.temporal.evelog import EveLog
from repro.temporal.events import EventList


@pytest.fixture
def stream(rng):
    n, nev, frames = 25, 500, 7
    return EventList.from_unsorted(
        rng.integers(0, n, nev),
        rng.integers(0, n, nev),
        rng.integers(0, frames, nev),
        n,
    )


@pytest.fixture(params=[EveLog, EdgeLog], ids=["evelog", "edgelog"])
def log_store(request, stream):
    return request.param(stream)


class TestCorrectness:
    def test_edge_active_matches_oracle(self, stream, log_store, rng):
        for f in range(stream.num_frames):
            active = set(stream.active_keys_at(f).tolist())
            for _ in range(40):
                u = int(rng.integers(0, stream.num_nodes))
                v = int(rng.integers(0, stream.num_nodes))
                assert log_store.edge_active(u, v, f) == ((u << 32 | v) in active)

    def test_neighbors_matches_oracle(self, stream, log_store):
        for f in (0, stream.num_frames - 1):
            u_act, v_act = stream.active_edges_at(f)
            for u in range(stream.num_nodes):
                want = sorted(v_act[u_act == u].tolist())
                assert sorted(log_store.neighbors_at(u, f).tolist()) == want

    def test_vertex_without_events(self, log_store):
        # node ids are in range but may have no outgoing events
        n = log_store.num_nodes
        lonely = n - 1
        assert isinstance(log_store.edge_active(lonely, 0, 0), bool)

    def test_bounds(self, log_store):
        with pytest.raises(QueryError):
            log_store.edge_active(log_store.num_nodes, 0, 0)
        with pytest.raises(FrameError):
            log_store.edge_active(0, 0, log_store.num_frames)
        with pytest.raises(FrameError):
            log_store.neighbors_at(0, -1)


class TestStructuralProperties:
    def test_memory_positive_and_reported(self, log_store):
        assert log_store.memory_bytes() > 0
        assert "mem=" in repr(log_store)

    def test_within_frame_double_toggle(self):
        """Two toggles of the same edge in one frame: logs must count
        both (parity lands back at inactive)."""
        ev = EventList(np.array([0, 0]), np.array([1, 1]), np.array([0, 0]), 2)
        for cls in (EveLog, EdgeLog):
            store = cls(ev)
            assert not store.edge_active(0, 1, 0), cls.__name__

    def test_interval_semantics(self):
        """EdgeLog pairs toggles into [on, off) intervals."""
        ev = EventList(
            np.array([0, 0, 0]), np.array([1, 1, 1]), np.array([1, 3, 5]), 2
        )
        store = EdgeLog(ev)
        expect = {0: False, 1: True, 2: True, 3: False, 4: False, 5: True}
        for f, want in expect.items():
            assert store.edge_active(0, 1, f) == want, f
