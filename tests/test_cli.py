"""CLI: every command end-to-end through main()."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.csr.packed import BitPackedCSR


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "edges.txt"
    assert main(["generate", "er", str(path), "--nodes", "50", "--edges", "400"]) == 0
    return path


@pytest.fixture
def packed_file(tmp_path, edge_file):
    out = tmp_path / "g.npz"
    assert main(["build", str(edge_file), str(out), "-p", "4"]) == 0
    return out


class TestGenerate:
    @pytest.mark.parametrize("kind", ["rmat", "er", "ba", "ws"])
    def test_kinds(self, tmp_path, kind, capsys):
        path = tmp_path / f"{kind}.txt"
        rc = main(["generate", kind, str(path), "--nodes", "64", "--edges", "300"])
        assert rc == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_standin(self, tmp_path, capsys):
        path = tmp_path / "s.txt"
        rc = main(["generate", "standin", str(path), "--name", "webnotredame",
                   "--scale", "0.002"])
        assert rc == 0
        assert "edges" in capsys.readouterr().out


class TestBuild:
    def test_build_roundtrip(self, packed_file, capsys):
        packed = BitPackedCSR.load(packed_file)
        assert packed.num_edges == 400
        rc = main(["info", str(packed_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bits per edge" in out

    def test_build_gap(self, tmp_path, edge_file):
        out = tmp_path / "gap.npz"
        assert main(["build", str(edge_file), str(out), "--gap"]) == 0
        assert BitPackedCSR.load(out).gap_encoded

    def test_build_reports_simulated_time(self, tmp_path, edge_file, capsys):
        out = tmp_path / "g.npz"
        main(["build", str(edge_file), str(out), "-p", "8"])
        assert "simulated ms on p=8" in capsys.readouterr().out

    def test_missing_input(self, tmp_path, capsys):
        rc = main(["build", str(tmp_path / "nope.txt"), str(tmp_path / "o.npz")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("1 2 3\n")
        rc = main(["build", str(bad), str(tmp_path / "o.npz")])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_neighbors(self, packed_file, capsys):
        rc = main(["query", str(packed_file), "neighbors", "0", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "degree" in out

    def test_edge_exit_codes(self, packed_file, capsys):
        packed = BitPackedCSR.load(packed_file)
        # find one present edge
        u = int(np.argmax(packed.degrees()))
        v = int(packed.neighbors(u)[0])
        assert main(["query", str(packed_file), "edge", str(u), str(v)]) == 0
        assert "present" in capsys.readouterr().out
        # a guaranteed-absent self-edge on an isolated check
        missing = main(["query", str(packed_file), "edge", str(u), str(u)])
        out = capsys.readouterr().out
        if "absent" in out:
            assert missing == 3
        else:
            assert missing == 0

    def test_out_of_range_is_clean_error(self, packed_file, capsys):
        rc = main(["query", str(packed_file), "neighbors", "9999"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestBench:
    def test_table2(self, capsys):
        rc = main(["bench", "table2", "--scale", "0.0003", "--min-edges", "3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Speed-Up (%)" in out
        assert "paper CSR" in out

    @pytest.mark.parametrize("artifact", ["fig6", "fig7"])
    def test_figures(self, artifact, capsys):
        rc = main(["bench", artifact, "--scale", "0.0003", "--min-edges", "3000"])
        assert rc == 0
        assert "Figure" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
