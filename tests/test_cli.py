"""CLI: every command end-to-end through main()."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.csr.packed import BitPackedCSR


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "edges.txt"
    assert main(["generate", "er", str(path), "--nodes", "50", "--edges", "400"]) == 0
    return path


@pytest.fixture
def packed_file(tmp_path, edge_file):
    out = tmp_path / "g.npz"
    assert main(["build", str(edge_file), str(out), "-p", "4"]) == 0
    return out


class TestGenerate:
    @pytest.mark.parametrize("kind", ["rmat", "er", "ba", "ws"])
    def test_kinds(self, tmp_path, kind, capsys):
        path = tmp_path / f"{kind}.txt"
        rc = main(["generate", kind, str(path), "--nodes", "64", "--edges", "300"])
        assert rc == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_standin(self, tmp_path, capsys):
        path = tmp_path / "s.txt"
        rc = main(["generate", "standin", str(path), "--name", "webnotredame",
                   "--scale", "0.002"])
        assert rc == 0
        assert "edges" in capsys.readouterr().out


class TestBuild:
    def test_build_roundtrip(self, packed_file, capsys):
        packed = BitPackedCSR.load(packed_file)
        assert packed.num_edges == 400
        rc = main(["info", str(packed_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bits per edge" in out

    def test_build_gap(self, tmp_path, edge_file):
        out = tmp_path / "gap.npz"
        assert main(["build", str(edge_file), str(out), "--gap"]) == 0
        assert BitPackedCSR.load(out).gap_encoded

    def test_build_reports_simulated_time(self, tmp_path, edge_file, capsys):
        out = tmp_path / "g.npz"
        main(["build", str(edge_file), str(out), "-p", "8"])
        assert "simulated ms on p=8" in capsys.readouterr().out

    def test_missing_input(self, tmp_path, capsys):
        rc = main(["build", str(tmp_path / "nope.txt"), str(tmp_path / "o.npz")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("1 2 3\n")
        rc = main(["build", str(bad), str(tmp_path / "o.npz")])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_neighbors(self, packed_file, capsys):
        rc = main(["query", str(packed_file), "neighbors", "0", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "degree" in out

    def test_neighbors_with_row_cache(self, packed_file, capsys):
        rc = main(["query", str(packed_file), "--cache-elements", "5000",
                   "neighbors", "0", "0", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "degree" in out
        # cache stats table printed after the batch, and node 0 repeated
        assert "hit rate" in out
        assert "misses" in out

    def test_edge_with_row_cache_keeps_exit_codes(self, packed_file, capsys):
        packed = BitPackedCSR.load(packed_file)
        u = int(np.argmax(packed.degrees()))
        v = int(packed.neighbors(u)[0])
        rc = main(["query", str(packed_file), "--cache-elements", "100",
                   "edge", str(u), str(v)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "present" in out and "hit rate" in out

    def test_edge_exit_codes(self, packed_file, capsys):
        packed = BitPackedCSR.load(packed_file)
        # find one present edge
        u = int(np.argmax(packed.degrees()))
        v = int(packed.neighbors(u)[0])
        assert main(["query", str(packed_file), "edge", str(u), str(v)]) == 0
        assert "present" in capsys.readouterr().out
        # a guaranteed-absent self-edge on an isolated check
        missing = main(["query", str(packed_file), "edge", str(u), str(u)])
        out = capsys.readouterr().out
        if "absent" in out:
            assert missing == 3
        else:
            assert missing == 0

    def test_out_of_range_is_clean_error(self, packed_file, capsys):
        rc = main(["query", str(packed_file), "neighbors", "9999"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestBench:
    def test_table2(self, capsys):
        rc = main(["bench", "table2", "--scale", "0.0003", "--min-edges", "3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Speed-Up (%)" in out
        assert "paper CSR" in out

    @pytest.mark.parametrize("artifact", ["fig6", "fig7"])
    def test_figures(self, artifact, capsys):
        rc = main(["bench", artifact, "--scale", "0.0003", "--min-edges", "3000"])
        assert rc == 0
        assert "Figure" in capsys.readouterr().out


class TestServeBench:
    def test_smoke_tiny_graph(self, capsys):
        rc = main(["serve-bench", "--nodes", "256", "--edges", "2000",
                   "--requests", "400", "--seed", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving throughput" in out
        assert "coalesced" in out
        assert "batches dispatched" in out

    def test_smoke_with_cache_and_policy(self, capsys):
        rc = main(["serve-bench", "--nodes", "256", "--edges", "2000",
                   "--requests", "300", "--seed", "7", "--policy", "shed-oldest",
                   "--cache-elements", "4000", "--workload", "uniform"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "row cache (serve path)" in out

    def test_serves_built_file(self, packed_file, capsys):
        rc = main(["serve-bench", "--input", str(packed_file),
                   "--requests", "200", "--batch", "32"])
        assert rc == 0
        assert "req/s" in capsys.readouterr().out


class TestTrace:
    def test_monolithic_trace_renders_all_views(self, capsys):
        rc = main(["trace", "--nodes", "256", "--edges", "2000",
                   "--requests", "24", "--seed", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "traced" in out and "roots" in out
        assert "kernel:neighbors" in out
        assert "cost rollup" in out
        assert "flamegraph" in out

    def test_cluster_trace_shows_scatter_chain(self, capsys):
        rc = main(["trace", "--workers", "4", "--replicas", "2",
                   "--nodes", "256", "--edges", "2000",
                   "--requests", "24", "--seed", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "router:sub" in out
        assert "router:dispatch" in out
        assert "query:kernel:neighbors" in out

    def test_trace_json_schema(self, capsys):
        import json

        rc = main(["trace", "--nodes", "128", "--edges", "1000",
                   "--requests", "8", "--json", "--seed", "7"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "trace"
        assert doc["mode"] == "monolithic"
        assert doc["spans"] and doc["rollup"]
        span = doc["spans"][0]
        assert {"span_id", "parent_id", "name", "layer", "cost"} <= set(span)
        roots = [s for s in doc["spans"] if s["parent_id"] is None]
        assert roots and all(s["name"] == "request" for s in roots)

    def test_trace_built_file(self, packed_file, capsys):
        rc = main(["trace", "--input", str(packed_file),
                   "--requests", "8", "--seed", "3"])
        assert rc == 0
        assert "kernel:" in capsys.readouterr().out

    def test_trace_sampling_knob(self, capsys):
        rc = main(["trace", "--nodes", "128", "--edges", "1000",
                   "--requests", "16", "--sample-every", "4", "--seed", "7"])
        assert rc == 0
        assert "sample every 4" in capsys.readouterr().out


class TestJsonOutputs:
    def test_info_json(self, packed_file, capsys):
        import json

        rc = main(["info", str(packed_file), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "BitPackedCSR"
        assert doc["nodes"] == 50
        assert doc["edges"] == 400
        assert doc["bits_per_edge"] > 0

    def test_serve_bench_json_monolithic(self, capsys):
        import json

        rc = main(["serve-bench", "--nodes", "256", "--edges", "2000",
                   "--requests", "300", "--seed", "7", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "serve-bench"
        assert doc["mode"] == "monolithic"
        assert doc["speedup"] > 0
        assert doc["coalesced"]["completed"] > 0

    def test_serve_bench_json_cluster(self, capsys):
        import json

        rc = main(["serve-bench", "--workers", "2", "--replicas", "1",
                   "--nodes", "256", "--edges", "2000",
                   "--requests", "400", "--seed", "7", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["mode"] == "cluster"
        assert doc["workers"] == 2
        assert doc["cluster"]["subs_dispatched"] > 0


class TestCleanErrors:
    """ReproError must exit non-zero with a one-line message — no
    traceback — all the way through the real interpreter entry point."""

    def test_repro_error_exit_code_and_message(self, packed_file):
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo / "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "query", str(packed_file),
             "neighbors", "999999"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 2
        assert proc.stderr.startswith("error:")
        assert "Traceback" not in proc.stderr
        assert "Traceback" not in proc.stdout

    def test_validation_error_in_process(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("not an edge list\n")
        rc = main(["build", str(bad), str(tmp_path / "o.npz")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
