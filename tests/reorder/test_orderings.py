"""Ordering computations: valid permutations, structural properties."""

import numpy as np
import pytest

from repro.csr.builder import build_csr_serial, ensure_sorted
from repro.reorder import available_orderings, compute_ordering, slashburn_order
from repro.errors import ValidationError


def _graph(rng, n=120, m=900):
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    src, dst = ensure_sorted(src, dst)
    return build_csr_serial(src, dst, n)


def _is_permutation(perm, n):
    perm = np.asarray(perm)
    return perm.shape == (n,) and np.array_equal(np.sort(perm), np.arange(n))


class TestEveryOrdering:
    @pytest.mark.parametrize("name", sorted(["natural", "degree", "bfs", "slashburn"]))
    def test_valid_permutation(self, rng, name):
        graph = _graph(rng)
        assert name in available_orderings()
        perm = compute_ordering(name, graph)
        assert _is_permutation(perm, graph.num_nodes)

    @pytest.mark.parametrize("name", ["natural", "degree", "bfs", "slashburn"])
    def test_empty_and_singleton_graphs(self, name):
        empty = build_csr_serial(np.zeros(0, dtype=np.int64),
                                 np.zeros(0, dtype=np.int64), 0)
        assert compute_ordering(name, empty).shape == (0,)
        one = build_csr_serial(np.array([0]), np.array([0]), 1)
        assert _is_permutation(compute_ordering(name, one), 1)

    @pytest.mark.parametrize("name", ["natural", "degree", "bfs", "slashburn"])
    def test_deterministic(self, rng, name):
        graph = _graph(rng)
        assert np.array_equal(
            compute_ordering(name, graph), compute_ordering(name, graph)
        )

    def test_unknown_name_one_line_error(self, rng):
        graph = _graph(rng)
        with pytest.raises(ValidationError, match=r"unknown ordering 'hilbert' \(known: "):
            compute_ordering("hilbert", graph)


class TestNatural:
    def test_is_identity(self, rng):
        graph = _graph(rng)
        assert np.array_equal(
            compute_ordering("natural", graph), np.arange(graph.num_nodes)
        )


class TestDegree:
    def test_hubs_get_small_ids(self, rng):
        graph = _graph(rng)
        perm = compute_ordering("degree", graph)
        src, dst = graph.edges()
        total = graph.degrees() + np.bincount(dst, minlength=graph.num_nodes)
        # new id 0 belongs to a max-total-degree node
        node_at_zero = int(np.flatnonzero(perm == 0)[0])
        assert total[node_at_zero] == total.max()


class TestBfs:
    def test_chain_is_contiguous(self):
        # a path graph seeded at its hub end must number it 0..n-1ish
        n = 30
        src = np.arange(n - 1)
        dst = np.arange(1, n)
        src, dst = ensure_sorted(
            np.concatenate([src, dst]), np.concatenate([dst, src])
        )
        graph = build_csr_serial(src, dst, n)
        perm = compute_ordering("bfs", graph)
        assert _is_permutation(perm, n)
        # neighbours along the path differ by exactly 1 in the new order
        diffs = np.abs(np.diff(perm))
        assert diffs.max() <= 2


class TestSlashburn:
    def test_hubs_front_spokes_back(self):
        # star + isolated triangle: the star centre is the top hub and
        # takes id 0; its leaves become singleton spokes once the centre
        # is peeled, so they are laid out at the back (high ids)
        star_src = np.zeros(8, dtype=np.int64)
        star_dst = np.arange(1, 9)
        tri = np.array([[9, 10], [10, 11], [11, 9]])
        src = np.concatenate([star_src, tri[:, 0]])
        dst = np.concatenate([star_dst, tri[:, 1]])
        src, dst = ensure_sorted(src, dst)
        graph = build_csr_serial(src, dst, 12)
        perm = slashburn_order(graph, hub_fraction=0.1)
        assert _is_permutation(perm, 12)
        assert perm[0] == 0  # the star centre is the first hub peeled
        assert perm[1:9].min() >= 4  # every leaf lands in the back range

    def test_parameter_validation(self, rng):
        graph = _graph(rng)
        with pytest.raises(ValidationError):
            slashburn_order(graph, hub_fraction=0.0)
        with pytest.raises(ValidationError):
            slashburn_order(graph, max_rounds=0)

    def test_dense_and_disconnected(self, rng):
        # many small components, no giant: still a valid permutation
        blocks = []
        for b in range(10):
            base = b * 5
            blocks.append((base + np.array([0, 1, 2, 3]), base + np.array([1, 2, 3, 4])))
        src = np.concatenate([s for s, _ in blocks])
        dst = np.concatenate([d for _, d in blocks])
        src, dst = ensure_sorted(src, dst)
        graph = build_csr_serial(src, dst, 50)
        assert _is_permutation(slashburn_order(graph), 50)
