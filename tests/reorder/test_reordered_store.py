"""ReorderedStore: bit-exact round-trips in the original id space."""

import numpy as np
import pytest

from repro.csr.builder import build_csr_serial, ensure_sorted
from repro.reorder import ReorderedStore, build_reordered_store
from repro.errors import QueryError, ValidationError
from repro.stores import open_store

ORDERINGS = ["natural", "degree", "bfs", "slashburn"]

# every registered kind that can serve as a reordered inner, including
# the nested sharded and disk stores
INNER_KINDS = [
    ("packed", {}),
    ("gap", {}),
    ("compact", {"segment_bytes": 2048}),
    ("csr", {}),
    ("adjlist", {}),
    ("sharded", {"shards": 3, "partitioner": "hash"}),
    ("disk", {"segment_bytes": 2048}),
]


@pytest.fixture
def edges(rng):
    n, m = 150, 1800
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    src, dst = ensure_sorted(src, dst)
    return src, dst, n


def _reference(src, dst, n):
    return build_csr_serial(src, dst, n)


class TestRoundTrip:
    @pytest.mark.parametrize("order", ORDERINGS)
    @pytest.mark.parametrize("kind,opts", INNER_KINDS,
                             ids=[k for k, _ in INNER_KINDS])
    def test_bit_exact_vs_unreordered(self, rng, edges, order, kind, opts):
        src, dst, n = edges
        ref = _reference(src, dst, n)
        store = build_reordered_store(
            src, dst, n, order=order, inner=kind, **opts
        )
        assert isinstance(store, ReorderedStore)
        assert store.num_nodes == n and store.num_edges == src.shape[0]
        for u in range(n):
            assert store.degree(u) == ref.degree(u)
            assert np.array_equal(
                np.asarray(store.neighbors(u), dtype=np.int64),
                ref.neighbors(u),
            )
        batch = rng.integers(0, n, 120)
        flat, offsets = store.neighbors_batch(batch)
        rflat, roffsets = ref.neighbors_batch(batch)
        assert np.array_equal(offsets, roffsets)
        assert np.array_equal(np.asarray(flat, dtype=np.int64), rflat)
        for u, v in zip(rng.integers(0, n, 60), rng.integers(0, n, 60)):
            assert store.has_edge(int(u), int(v)) == ref.has_edge(int(u), int(v))

    @pytest.mark.parametrize("order", ORDERINGS)
    def test_to_csr_is_original_graph(self, edges, order):
        src, dst, n = edges
        store = build_reordered_store(src, dst, n, order=order, inner="packed")
        assert store.to_csr() == _reference(src, dst, n)


class TestSaveLoad:
    @pytest.mark.parametrize("inner", ["packed", "compact"])
    def test_roundtrip(self, tmp_path, edges, inner):
        src, dst, n = edges
        store = build_reordered_store(src, dst, n, order="degree", inner=inner)
        path = tmp_path / "reordered.npz"
        store.save(path)
        loaded = ReorderedStore.load(path)
        assert loaded.ordering == "degree"
        assert np.array_equal(loaded.perm, store.perm)
        assert loaded.to_csr() == store.to_csr()
        assert loaded.bits_per_edge() == store.bits_per_edge()

    def test_unsupported_inner_refused(self, edges, tmp_path):
        src, dst, n = edges
        store = build_reordered_store(src, dst, n, order="degree", inner="adjlist")
        with pytest.raises(ValidationError, match="packed or compact"):
            store.save(tmp_path / "bad.npz")


class TestValidation:
    def test_perm_must_be_permutation(self, edges):
        src, dst, n = edges
        inner = open_store("packed", src, dst, n, sort=True)
        with pytest.raises(ValidationError):
            ReorderedStore(inner, np.zeros(n, dtype=np.int64))
        with pytest.raises(ValidationError):
            ReorderedStore(inner, np.arange(n - 1))

    def test_no_direct_nesting(self, edges):
        src, dst, n = edges
        with pytest.raises(ValidationError, match="nest"):
            build_reordered_store(src, dst, n, inner="reordered")

    def test_unknown_ordering_propagates(self, edges):
        src, dst, n = edges
        with pytest.raises(ValidationError, match="unknown ordering"):
            build_reordered_store(src, dst, n, order="zorp")

    def test_node_out_of_range(self, edges):
        src, dst, n = edges
        store = build_reordered_store(src, dst, n)
        with pytest.raises(QueryError):
            store.neighbors(n)
        with pytest.raises(QueryError):
            store.neighbors_batch(np.array([-1]))


class TestAccounting:
    def test_memory_counts_id_tables(self, edges):
        src, dst, n = edges
        store = build_reordered_store(src, dst, n, inner="packed")
        assert store.memory_bytes() >= (
            store.inner.memory_bytes() + 2 * 8 * n
        )

    def test_bits_per_edge_is_inner_only(self, edges):
        src, dst, n = edges
        store = build_reordered_store(src, dst, n, inner="packed")
        assert store.bits_per_edge() == store.inner.bits_per_edge()

    def test_capability_forwarding(self, edges):
        src, dst, n = edges
        gap = build_reordered_store(src, dst, n, inner="gap")
        assert gap.gap_encoded is True
        plain = build_reordered_store(src, dst, n, inner="packed")
        assert plain.gap_encoded is False
        with pytest.raises(AttributeError):
            build_reordered_store(src, dst, n, inner="adjlist").gap_encoded
