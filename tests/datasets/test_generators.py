"""Graph generators: determinism, ranges, and topology fingerprints."""

import numpy as np
import pytest

from repro.datasets.ba import ba_edges
from repro.datasets.er import er_edges
from repro.datasets.rmat import SOCIAL_RMAT, WEB_RMAT, rmat_edges
from repro.errors import ValidationError


class TestRmat:
    def test_shapes_and_ranges(self):
        src, dst, n = rmat_edges(10, 5000, rng=np.random.default_rng(1))
        assert n == 1024
        assert src.shape == dst.shape == (5000,)
        assert src.min() >= 0 and src.max() < n
        assert dst.min() >= 0 and dst.max() < n

    def test_deterministic_with_seed(self):
        a = rmat_edges(8, 1000, rng=np.random.default_rng(7))
        b = rmat_edges(8, 1000, rng=np.random.default_rng(7))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_social_params_are_skewed(self):
        """R-MAT with social params must produce a heavier max degree
        than the uniform control at equal density."""
        rng = np.random.default_rng(3)
        src, _, n = rmat_edges(12, 40_000, params=SOCIAL_RMAT, rng=rng)
        er_src, _, _ = er_edges(n, 40_000, rng=rng)
        assert np.bincount(src).max() > 3 * np.bincount(er_src, minlength=n).max()

    def test_dedup_and_self_loops(self):
        rng = np.random.default_rng(5)
        src, dst, _ = rmat_edges(4, 2000, rng=rng, dedup=True, self_loops=False)
        assert np.all(src != dst)
        keys = (src.astype(np.uint64) << np.uint64(32)) | dst.astype(np.uint64)
        assert np.unique(keys).shape[0] == keys.shape[0]

    def test_param_validation(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            rmat_edges(4, 10, params=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(ValidationError):
            rmat_edges(0, 10)

    def test_web_params_valid(self):
        assert abs(sum(WEB_RMAT) - 1.0) < 1e-9


class TestBa:
    def test_edge_count_and_ranges(self):
        src, dst, n = ba_edges(500, 3, rng=np.random.default_rng(2))
        assert n == 500
        assert src.shape[0] == (500 - 3) * 3
        assert dst.max() < 500

    def test_attachment_is_preferential(self):
        """Early nodes accumulate far higher in-degree than late ones."""
        src, dst, n = ba_edges(2000, 2, rng=np.random.default_rng(4))
        indeg = np.bincount(dst, minlength=n)
        early = indeg[:20].mean()
        late = indeg[-200:].mean()
        assert early > 5 * late

    def test_targets_always_older(self):
        src, dst, _ = ba_edges(100, 2, rng=np.random.default_rng(6))
        assert np.all(dst < src)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ba_edges(3, 3)
        with pytest.raises(ValidationError):
            ba_edges(10, 0)


class TestEr:
    def test_uniformity(self):
        src, dst, n = er_edges(100, 50_000, rng=np.random.default_rng(8))
        deg = np.bincount(src, minlength=n)
        assert deg.max() < 3 * deg.mean()

    def test_no_self_loops_flag(self):
        src, dst, _ = er_edges(10, 5000, rng=np.random.default_rng(9), self_loops=False)
        assert np.all(src != dst)

    def test_zero_edges(self):
        src, dst, n = er_edges(10, 0)
        assert src.size == 0 and n == 10
