"""Watts-Strogatz generator."""

import numpy as np
import pytest

from repro.datasets.ws import ws_edges
from repro.errors import ValidationError


class TestWs:
    def test_pure_ring(self):
        src, dst, n = ws_edges(10, 2, 0.0)
        assert n == 10
        assert src.shape[0] == 20
        # node 0 points at 1 and 2
        assert sorted(dst[src == 0].tolist()) == [1, 2]
        # wrap-around
        assert sorted(dst[src == 9].tolist()) == [0, 1]

    def test_out_degree_constant(self, rng):
        src, dst, n = ws_edges(100, 4, 0.3, rng=rng)
        assert np.all(np.bincount(src, minlength=n) == 4)

    def test_beta_one_destroys_ring(self, rng):
        src, dst, _ = ws_edges(1000, 2, 1.0, rng=rng)
        ring_hits = np.mean((dst - src) % 1000 <= 2)
        assert ring_hits < 0.2  # almost everything rewired

    def test_beta_zero_deterministic(self):
        a = ws_edges(20, 3, 0.0)
        b = ws_edges(20, 3, 0.0)
        assert np.array_equal(a[1], b[1])

    def test_validation(self):
        with pytest.raises(ValidationError):
            ws_edges(2, 1, 0.5)
        with pytest.raises(ValidationError):
            ws_edges(10, 10, 0.5)
        with pytest.raises(ValidationError):
            ws_edges(10, 2, 1.5)

    def test_ids_in_range(self, rng):
        src, dst, n = ws_edges(64, 3, 0.5, rng=rng)
        assert src.max() < n and dst.max() < n
        assert src.min() >= 0 and dst.min() >= 0
