"""Paper-graph registry and stand-in generation."""

import numpy as np
import pytest

from repro.datasets.registry import PAPER_GRAPHS, paper_names, standin
from repro.errors import ValidationError
from repro.utils import is_sorted


class TestPaperSpecs:
    def test_table2_graphs_present(self):
        assert paper_names() == ["livejournal", "pokec", "orkut", "webnotredame"]

    def test_published_counts(self):
        lj = PAPER_GRAPHS["livejournal"]
        assert lj.num_nodes == 4_847_571
        assert lj.num_edges == 68_993_773
        assert lj.times_ms[64] == pytest.approx(17.613)
        assert lj.speedup_pct[64] == pytest.approx(89.31)

    def test_speedups_consistent_with_times(self):
        """Table II's last column must follow from its time column."""
        for spec in PAPER_GRAPHS.values():
            t1 = spec.times_ms[1]
            for p, pct in spec.speedup_pct.items():
                derived = (1 - spec.times_ms[p] / t1) * 100
                assert derived == pytest.approx(pct, abs=0.6), spec.name

    def test_avg_degree(self):
        assert PAPER_GRAPHS["orkut"].avg_degree == pytest.approx(38.1, abs=0.5)


class TestStandin:
    def test_scaled_counts(self):
        ds = standin("pokec", scale=1 / 100)
        assert ds.num_edges == pytest.approx(ds.paper.num_edges / 100, rel=0.01)
        assert ds.num_nodes == pytest.approx(ds.paper.num_nodes / 100, rel=0.01)
        assert ds.scale_factor() == pytest.approx(1 / 100, rel=0.01)

    def test_sorted_and_in_range(self):
        ds = standin("webnotredame", scale=1 / 20)
        assert is_sorted(ds.sources)
        assert ds.sources.max() < ds.num_nodes
        assert ds.destinations.max() < ds.num_nodes

    def test_deterministic(self):
        a = standin("orkut", scale=1 / 500, seed=42)
        b = standin("orkut", scale=1 / 500, seed=42)
        assert np.array_equal(a.sources, b.sources)
        c = standin("orkut", scale=1 / 500, seed=43)
        assert not np.array_equal(a.sources, c.sources)

    def test_avg_degree_tracks_paper(self):
        ds = standin("livejournal", scale=1 / 64)
        assert ds.avg_degree == pytest.approx(ds.paper.avg_degree, rel=0.05)

    def test_degree_skew_is_social(self):
        ds = standin("livejournal", scale=1 / 256)
        deg = np.bincount(ds.sources, minlength=ds.num_nodes)
        assert deg.max() > 20 * max(1.0, deg.mean())

    def test_unknown_graph(self):
        with pytest.raises(ValidationError, match="known:"):
            standin("friendster")

    def test_scale_bounds(self):
        with pytest.raises(ValidationError):
            standin("pokec", scale=0)
        with pytest.raises(ValidationError):
            standin("pokec", scale=1.5)


class TestChurnEvents:
    def test_stream_shape(self):
        from repro.datasets.temporal import churn_events

        ev = churn_events(
            100, 300, 10, add_per_frame=30, delete_per_frame=20,
            rng=np.random.default_rng(1),
        )
        assert ev.num_frames == 10
        assert ev.num_nodes == 100
        # frame 0 holds the base graph
        u0, _ = ev.frame_slice(0)
        assert u0.shape[0] > 200

    def test_deletions_toggle_active_edges(self):
        from repro.datasets.temporal import churn_events

        ev = churn_events(
            50, 200, 6, add_per_frame=0, delete_per_frame=40,
            rng=np.random.default_rng(2),
        )
        # active set must shrink monotonically with pure deletions
        sizes = [ev.active_keys_at(f).shape[0] for f in range(6)]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] < sizes[0]

    def test_validation(self):
        from repro.datasets.temporal import churn_events

        with pytest.raises(ValidationError):
            churn_events(1, 10, 5)
        with pytest.raises(ValidationError):
            churn_events(10, 10, 0)
