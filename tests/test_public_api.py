"""Meta-tests on the public surface: exports resolve, docs exist.

These keep the documentation deliverable honest: every name a package
advertises in ``__all__`` must exist and every public class/function
must carry a docstring.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.parallel",
    "repro.bitpack",
    "repro.csr",
    "repro.temporal",
    "repro.query",
    "repro.baselines",
    "repro.disk",
    "repro.reorder",
    "repro.pcsr",
    "repro.datasets",
    "repro.analysis",
    "repro.serve",
    "repro.cluster",
    "repro.algorithms",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    for export in getattr(module, "__all__", []):
        assert hasattr(module, export), f"{name}.__all__ lists missing {export!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_objects_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for export in getattr(module, "__all__", []):
        obj = getattr(module, export)
        if inspect.ismodule(obj):
            continue
        if inspect.isclass(obj) or callable(obj):
            if not inspect.getdoc(obj):
                undocumented.append(export)
    assert not undocumented, f"{name}: missing docstrings for {undocumented}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_classes_document_their_methods(name):
    module = importlib.import_module(name)
    missing = []
    for export in getattr(module, "__all__", []):
        obj = getattr(module, export)
        if not inspect.isclass(obj):
            continue
        for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
            if meth_name.startswith("_"):
                continue
            if meth.__qualname__.split(".")[0] != obj.__name__:
                continue  # inherited
            if not inspect.getdoc(meth):
                missing.append(f"{export}.{meth_name}")
    assert not missing, f"{name}: undocumented public methods {missing}"


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_cli_entrypoint_importable():
    from repro.cli import build_parser

    parser = build_parser()
    assert parser.prog == "repro"
