#!/usr/bin/env python
"""Social-network analytics on a compressed graph.

The introduction's motivating questions — "who are all the
acquaintances of a given user?", "is there a connection between two
individuals?", "how would a user's influence spread?" — answered on a
LiveJournal-like stand-in without ever decompressing the store.

Run:  python examples/social_network_queries.py
"""

import numpy as np

from repro import SimulatedMachine, build_csr
from repro.csr import BitPackedCSR, bfs_levels, degree_histogram, two_hop_neighbors
from repro.datasets import standin
from repro.query import QueryEngine
from repro.utils import human_bytes

# A 1/256-scale LiveJournal stand-in (same topology class + degree).
ds = standin("livejournal", scale=1 / 256, seed=7)
print(f"dataset: {ds.name} stand-in, {ds.num_nodes:,} nodes, {ds.num_edges:,} edges")

machine = SimulatedMachine(16)
graph = build_csr(ds.sources, ds.destinations, ds.num_nodes, machine)
packed = BitPackedCSR.from_csr(graph, machine)
print(f"raw CSR {human_bytes(graph.memory_bytes())} -> "
      f"packed {human_bytes(packed.memory_bytes())}")

# -- degree structure: is this a social network? ----------------------
values, counts = degree_histogram(graph)
top = np.argsort(-values)[:1]
print(f"degree range 0..{values.max()}; "
      f"{counts[values <= 2].sum():,} nodes with degree <= 2 (heavy tail)")

# -- acquaintances of the most-followed user --------------------------
engine = QueryEngine(packed, SimulatedMachine(8))
celebrity = int(np.argmax(graph.degrees()))
friends = engine.neighbors([celebrity])[0]
print(f"celebrity node {celebrity}: {len(friends):,} direct neighbours")

# friends-of-friends via the row-parallel SpGEMM primitive of [28]
fof = two_hop_neighbors(graph, celebrity, SimulatedMachine(8))
print(f"  two-hop audience: {len(fof):,} nodes "
      f"({len(fof) / graph.num_nodes:.1%} of the graph)")

# -- connection checks, batched across processors ---------------------
rng = np.random.default_rng(1)
pairs = [(celebrity, int(v)) for v in rng.choice(friends, size=3)] + [
    (celebrity, int(rng.integers(0, graph.num_nodes))) for _ in range(3)
]
for (u, v), connected in zip(pairs, engine.has_edges(pairs)):
    print(f"  connected({u}, {v}) = {bool(connected)}")

# -- influence spread: BFS levels from the celebrity ------------------
levels = bfs_levels(graph, celebrity, SimulatedMachine(8))
reached = levels >= 0
print("influence spread (BFS hops):")
for hop in range(1, int(levels.max()) + 1):
    print(f"  <= {hop} hops: {(reached & (levels <= hop)).sum():,} nodes")
