#!/usr/bin/env python
"""Edges that never stop arriving: streaming builds and dynamic updates.

Two ways past the static-CSR limitation the paper notes in Section II:

1. :class:`StreamingCSRBuilder` (the authors' prior work [3], [4]) —
   ingest an unsorted edge stream with log-structured sorted runs,
   snapshot a queryable CSR at any point, finish into the paper's
   bit-packed form.
2. :class:`PCSRGraph` (the Packed-Memory-Array route of [9], [13] the
   paper declined) — in-place edge insertions and deletions with the
   same query API.

Run:  python examples/streaming_and_dynamic.py
"""

import numpy as np

from repro import SimulatedMachine
from repro.csr import StreamingCSRBuilder, pagerank
from repro.datasets import rmat_edges
from repro.pcsr import PCSRGraph
from repro.query import QueryEngine
from repro.utils import human_bytes

rng = np.random.default_rng(77)
N = 1 << 12

# ----------------------------------------------------------------------
# 1. Streaming ingestion: edges arrive in arbitrary order, in bursts.
print("== streaming construction ==")
builder = StreamingCSRBuilder(N, buffer_size=2048)
for hour in range(6):
    src, dst, _ = rmat_edges(12, 15_000, rng=rng)
    builder.add_edges(src, dst)
    snap = builder.snapshot()
    print(f"hour {hour}: {builder.num_edges:>7,} edges streamed, "
          f"runs {builder.run_sizes()}, snapshot degree(0) = {snap.degree(0)}")

packed = builder.finish(SimulatedMachine(8), pack=True)
print(f"finished into {packed}")

# the snapshot is a first-class graph: rank users on it
graph = packed.to_csr()
pr = pagerank(graph, SimulatedMachine(8))
top = np.argsort(-pr)[:5]
print("top-5 PageRank nodes:", top.tolist())

# ----------------------------------------------------------------------
# 2. Dynamic maintenance: the same network under follow/unfollow churn.
print("\n== dynamic updates (PCSR) ==")
src, dst = graph.edges()
pcsr = PCSRGraph.from_edges(src[:40_000], dst[:40_000], N)
print(f"seeded {pcsr}")

for day in range(3):
    adds = (rng.integers(0, N, 2_000), rng.integers(0, N, 2_000))
    cur_src, cur_dst = pcsr.edges()
    drop = rng.choice(cur_src.shape[0], size=min(1_000, cur_src.shape[0]), replace=False)
    dels = (cur_src[drop], cur_dst[drop])
    added, deleted = pcsr.apply_batch(additions=adds, deletions=dels)
    print(f"day {day}: +{added} / -{deleted} edges -> m={pcsr.num_edges:,}, "
          f"capacity {pcsr.capacity:,} "
          f"({human_bytes(pcsr.memory_bytes())})")

# queries keep working throughout, via the same Section V engine
engine = QueryEngine(pcsr, SimulatedMachine(4))
hub = int(np.argmax(pcsr.degrees()))
print(f"hub {hub}: degree {pcsr.degree(hub)}, "
      f"sample neighbours {engine.neighbors([hub])[0][:8].tolist()}")

# a consistent static snapshot is one call away
snapshot = pcsr.to_csr()
print(f"frozen snapshot: {snapshot!r}")
