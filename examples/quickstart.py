#!/usr/bin/env python
"""Quickstart: build, compress, and query a social graph in ~40 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SimulatedMachine, build_bitpacked_csr
from repro.datasets import rmat_edges
from repro.query import QueryEngine
from repro.utils import human_bytes

# 1. A synthetic social network: 2^14 nodes, ~200k edges, power-law.
src, dst, n = rmat_edges(
    14, 200_000, rng=np.random.default_rng(42), dedup=True, self_loops=False
)
print(f"graph: {n:,} nodes, {len(src):,} edges")

# 2. Build the bit-packed CSR with the paper's parallel pipeline.
#    SimulatedMachine(16) executes the real kernels while modelling a
#    16-processor shared-memory machine (see DESIGN.md).
machine = SimulatedMachine(16)
packed = build_bitpacked_csr(src, dst, n, machine, sort=True)
print(f"built {packed} in {machine.elapsed_ms():.2f} simulated ms on p=16")
print(f"packed size: {human_bytes(packed.memory_bytes())} "
      f"({packed.bits_per_edge():.1f} bits/edge)")

# 3. Query it without decompressing (Section V).
engine = QueryEngine(packed, SimulatedMachine(8))

hub = int(np.argmax(packed.degrees()))
neighbors = engine.neighbors([hub])[0]
print(f"hub node {hub} has {len(neighbors)} neighbours; first 10: "
      f"{neighbors[:10].tolist()}")

some_edges = [(int(src[i]), int(dst[i])) for i in range(5)]
some_edges += [(0, 1), (1, 0)]
print("edge existence:", dict(zip(some_edges, engine.has_edges(some_edges).tolist())))

# 4. Single-edge query with the row split across processors (Alg. 8).
u, v = some_edges[0]
print(f"has_edge({u}, {v}) via row-splitting:", engine.has_edge(u, v, method="bisect"))
