#!/usr/bin/env python
"""Regenerate the paper's evaluation artifacts (Table II, Figs 6-7).

Same code path as the benches, with a smaller default scale so it
finishes in seconds.  Pass a scale factor to go bigger:

Run:  python examples/parallel_scaling_report.py [scale]
      python examples/parallel_scaling_report.py 0.015625   # 1/64
"""

import sys

from repro.analysis import (
    amdahl_fit,
    render_fig6,
    render_fig7,
    run_fig6,
    run_table2,
)

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1 / 256

print("running Table II sweep (this executes the full pipeline once per "
      "graph and processor count)...\n")
table2 = run_table2(scale=scale, min_edges=100_000)
print(table2.render())
print()
print(table2.render_projection())

print("\nrunning Figure 6/7 sweep...\n")
curves = run_fig6(scale=scale, min_edges=100_000)
print(render_fig6(curves))
print()
print(render_fig7(curves))

print("\nAmdahl serial fractions implied by the measured curves")
print("(the paper's 'inherent sequential steps'):")
for name, curve in curves.items():
    ps = sorted(curve.times_ms)
    s = amdahl_fit(ps, [curve.times_ms[p] for p in ps])
    print(f"  {name:14s} serial fraction ~ {s:.3f}")
