#!/usr/bin/env python
"""Walk through the paper's own worked examples, end to end.

Reproduces, with this library's real code paths:

* Table I / Figure 1 — the 10-node example graph and its CSR arrays;
* Figure 2 — the chunked parallel prefix sum, phase by phase;
* Figure 3 — chunked degree computation with the temp-degree merge;
* Figure 4 — a 4-frame evolving graph stored differentially;
* the introduction's Friendster storage arithmetic.

Run:  python examples/paper_walkthrough.py
"""

import numpy as np

from repro import SimulatedMachine
from repro.analysis import render_trace
from repro.analysis.memory import projected_dense_matrix_bytes
from repro.csr import BitPackedCSR, CSRGraph, build_bitpacked_csr
from repro.csr.degree import degree_parallel
from repro.parallel import prefix_sum_parallel
from repro.temporal import EventList, build_tcsr
from repro.utils import human_bytes

# ----------------------------------------------------------------- Table I
print("== Table I / Figure 1: the example graph as CSR ==")
dense = np.zeros((10, 10), dtype=np.int64)
for u, v in [(0, 5), (1, 6), (1, 7), (2, 7), (3, 8), (3, 9), (4, 9),
             (5, 0), (6, 1), (7, 1), (7, 2), (8, 2), (8, 3), (9, 3)]:
    dense[u, v] = 1
graph = CSRGraph.from_dense(dense)
print("iA (offsets):", graph.indptr.tolist())
print("jA (columns):", graph.indices.tolist())
packed = BitPackedCSR.from_csr(graph)
print(f"bit-packed: {packed} ({packed.bits_per_edge():.1f} bits/edge)")

# ---------------------------------------------------------------- Figure 2
print("\n== Figure 2: chunked parallel prefix sum (p=4) ==")
vec = np.array([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8], dtype=np.int64)
print("input:   ", vec.tolist())
out = prefix_sum_parallel(vec, SimulatedMachine(4))
print("scanned: ", out.tolist())
assert out.tolist() == np.cumsum(vec).tolist()

# ---------------------------------------------------------------- Figure 3
print("\n== Figure 3: chunked degree computation (p=4) ==")
sources = np.array([0, 0, 0, 1, 1, 1, 1, 2, 3, 3, 4, 5, 5, 5, 5, 5])
machine = SimulatedMachine(4, record_trace=True)
deg = degree_parallel(sources, 6, machine)
print("sorted sources:", sources.tolist())
print("degree array:  ", deg.tolist())
assert deg.tolist() == np.bincount(sources, minlength=6).tolist()

# ---------------------------------------------------------------- Figure 4
print("\n== Figure 4: a graph evolving over 4 time-frames ==")
# frame 0: edges (0,1), (1,2); frame 1: +(2,3); frame 2: -(0,1); frame 3: +(0,1)
events = EventList.from_unsorted(
    [0, 1, 2, 0, 0], [1, 2, 3, 1, 1], [0, 0, 1, 2, 3], 4
)
tcsr = build_tcsr(events)
for f in range(4):
    snap = tcsr.snapshot(f)
    src, dst = snap.edges()
    print(f"frame {f}: active edges {list(zip(src.tolist(), dst.tolist()))}")
print(f"stored as base + {len(tcsr.deltas)} differential frames "
      f"({human_bytes(tcsr.memory_bytes())})")

# ------------------------------------------------------------ Introduction
print("\n== Introduction: the Friendster arithmetic ==")
n_friendster = 65_608_366
as_matrix = projected_dense_matrix_bytes(n_friendster, bits_per_cell=64)
print(f"65.6M nodes as a dense 8-byte-cell matrix: "
      f"{as_matrix / 1000**5:.2f} PB (paper says 'about 30.02 Petabytes')")

# --------------------------------------------------------- trace breakdown
print("\n== Where simulated time goes (pipeline on 100k random edges) ==")
rng = np.random.default_rng(0)
src = np.sort(rng.integers(0, 10_000, 100_000))
dst = rng.integers(0, 10_000, 100_000)
machine = SimulatedMachine(16, record_trace=True)
build_bitpacked_csr(src, dst, 10_000, machine)
print(render_trace(machine, title=f"p=16, total {machine.elapsed_ms():.2f} ms"))
