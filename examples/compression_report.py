#!/usr/bin/env python
"""Compression deep-dive: every representation of every paper graph.

For each Table II stand-in, measures the byte footprint of the raw
formats, the CSR family, and every registered codec on the column
array — then projects CSR and edge-list sizes to the published graph
scales using the closed-form memory model.

Run:  python examples/compression_report.py
"""

from repro.analysis import render_table
from repro.analysis.memory import (
    projected_dense_matrix_bytes,
    projected_edgelist_text_bytes,
    projected_packed_csr_bytes,
)
from repro.baselines import EdgeListStore
from repro.bitpack import available_codecs, get_codec, row_gaps
from repro.csr import BitPackedCSR, build_csr_serial
from repro.csr.io import edge_list_text_size
from repro.datasets import PAPER_GRAPHS, standin
from repro.utils import human_bytes

rows = []
for name in PAPER_GRAPHS:
    ds = standin(name, scale=1 / 256, seed=3)
    graph = build_csr_serial(ds.sources, ds.destinations, ds.num_nodes)
    packed = BitPackedCSR.from_csr(graph)
    gap = BitPackedCSR.from_csr(graph, gap_encode=True)
    rows.append([
        name,
        f"{ds.num_edges:,}",
        human_bytes(edge_list_text_size(ds.sources, ds.destinations)),
        human_bytes(EdgeListStore(ds.sources, ds.destinations, ds.num_nodes).memory_bytes()),
        human_bytes(graph.compact_dtypes().memory_bytes()),
        human_bytes(packed.memory_bytes()),
        human_bytes(gap.memory_bytes()),
    ])
print(render_table(
    ["graph", "edges", "text", "edge list", "CSR", "bit-packed", "gap+packed"],
    rows,
    title="Measured footprints at 1/256 scale",
))

print()
rows = []
for name, spec in PAPER_GRAPHS.items():
    n, m = spec.num_nodes, spec.num_edges
    rows.append([
        name,
        human_bytes(spec.edgelist_bytes) + " (paper)",
        human_bytes(projected_edgelist_text_bytes(n, m)),
        human_bytes(spec.csr_bytes) + " (paper)",
        human_bytes(projected_packed_csr_bytes(n, m)),
        human_bytes(projected_dense_matrix_bytes(n, bits_per_cell=1)),
    ])
print(render_table(
    ["graph", "edge list", "ours proj.", "CSR", "ours proj.", "dense bits"],
    rows,
    title="Projections at published scale (paper columns for comparison)",
))

print()
ds = standin("pokec", scale=1 / 256, seed=3)
graph = build_csr_serial(ds.sources, ds.destinations, ds.num_nodes)
gaps = row_gaps(graph.indptr, graph.indices)
rows = []
for codec_name in sorted(available_codecs()):
    codec = get_codec(codec_name)
    raw = codec.encode(graph.indices).nbits / graph.num_edges
    gapped = codec.encode(gaps).nbits / graph.num_edges
    rows.append([codec_name, f"{raw:.2f}", f"{gapped:.2f}"])
print(render_table(
    ["codec", "bits/edge (raw)", "bits/edge (gaps)"],
    rows,
    title="Column-array codecs on the pokec stand-in",
))

# -- WebGraph-style preprocessing: relabel hubs to small ids -----------
from repro.csr import degree_order, relabel  # noqa: E402

print()
reordered = relabel(graph, degree_order(graph))
rows = []
for label, g in (("original ids", graph), ("degree-ordered ids", reordered)):
    gg = row_gaps(g.indptr, g.indices)
    cells = [label]
    for codec_name in sorted(available_codecs()):
        cells.append(f"{get_codec(codec_name).encode(gg).nbits / g.num_edges:.2f}")
    rows.append(cells)
print(render_table(
    ["node labels"] + sorted(available_codecs()),
    rows,
    title="Gap-stream bits/edge before and after degree reordering",
))
