#!/usr/bin/env python
"""Time-evolving graphs: Wikipedia-style churn stored as differential TCSR.

Generates a toggle stream (edges added and removed over 24 frames),
builds the differential TCSR in parallel (Algorithm 5), compares its
footprint against a full CSR per frame and the EveLog/EdgeLog baselines,
then answers temporal queries.

Run:  python examples/time_evolving_graph.py
"""

import numpy as np

from repro import SimulatedMachine
from repro.datasets import churn_events
from repro.temporal import (
    CASIndex,
    CETIndex,
    EdgeLog,
    EveLog,
    TGCSA,
    build_tcsr,
    batch_edge_active,
    full_frame_csrs,
)
from repro.utils import human_bytes

# 24 frames of churn over 3k nodes: 20k base edges, then ~1.5k
# additions and ~1k deletions per frame.
events = churn_events(
    3_000, 20_000, 24,
    add_per_frame=1_500, delete_per_frame=1_000,
    rng=np.random.default_rng(99),
)
print(f"stream: {len(events):,} events over {events.num_frames} frames, "
      f"{events.num_nodes:,} nodes")

# -- build in parallel (Algorithm 5) ----------------------------------
machine = SimulatedMachine(16, record_trace=True)
tcsr = build_tcsr(events, machine)
print(f"built {tcsr} in {machine.elapsed_ms():.2f} simulated ms on p=16")
churn = tcsr.delta_edge_counts()
print(f"per-frame churn: min {churn.min():,}, max {churn.max():,} toggled edges")

# -- storage comparison (Section IV's motivation) ----------------------
full = sum(c.memory_bytes() for c in full_frame_csrs(events))
print("storage (every cited temporal structure, same data):")
for name, nbytes in [
    ("differential TCSR", tcsr.memory_bytes()),
    ("full CSR per frame", full),
    ("EveLog [21]", EveLog(events).memory_bytes()),
    ("EdgeLog [21]", EdgeLog(events).memory_bytes()),
    ("CAS wavelet [21]", CASIndex(events).memory_bytes()),
    ("CET wavelet [21]", CETIndex(events).memory_bytes()),
    ("TGCSA [27]", TGCSA.from_events(events).memory_bytes()),
]:
    print(f"  {name:20s} {human_bytes(nbytes):>12s}  "
          f"({nbytes / tcsr.memory_bytes():.1f}x TCSR)")

# -- temporal queries ---------------------------------------------------
rng = np.random.default_rng(5)
u0, v0 = int(events.u[0]), int(events.v[0])
history = [tcsr.edge_active(u0, v0, f) for f in range(events.num_frames)]
print(f"edge ({u0}, {v0}) activity over time: "
      + "".join("#" if a else "." for a in history))

mid = events.num_frames // 2
row = tcsr.neighbors_at(u0, mid)
print(f"neighbours of {u0} at frame {mid}: {row[:12].tolist()}"
      + (" ..." if len(row) > 12 else ""))

queries = [
    (int(rng.integers(0, events.num_nodes)),
     int(rng.integers(0, events.num_nodes)),
     int(rng.integers(0, events.num_frames)))
    for _ in range(1000)
]
qmachine = SimulatedMachine(8)
answers = batch_edge_active(tcsr, queries, qmachine)
print(f"1000 batched activity queries on p=8: {int(answers.sum())} hits, "
      f"{qmachine.elapsed_ms():.3f} simulated ms")

# snapshots reconstruct full graphs at any frame
snap = tcsr.snapshot(events.num_frames - 1)
print(f"final snapshot: {snap.num_edges:,} active edges")
