#!/usr/bin/env python
"""Validate the shared schema of every ``BENCH_*.json`` baseline.

Each benchmark records its acceptance baseline at the repo root via
``benchmarks/conftest.baseline_record``, which stamps four shared keys
on top of the bench-specific payload:

* ``name``     — the subsystem the baseline belongs to ("serve", "lsm", ...)
* ``gate``     — the acceptance criterion, as one human-readable line
* ``measured`` — the number the gate was checked against (a float)
* ``date``     — when the baseline was last recorded (YYYY-MM-DD)

CI runs this script so a baseline written by hand (or by an older
bench) cannot silently drop the keys the analysis tooling and release
notes read.  Exits non-zero with one line per problem.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REQUIRED = ("name", "gate", "measured", "date")
ROOT = Path(__file__).resolve().parent


def check_baseline(path: Path) -> list[str]:
    """Problems with one baseline file (empty list when it is clean)."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    if not isinstance(doc, dict):
        return [f"{path.name}: top level must be a JSON object"]
    problems = []
    for key in REQUIRED:
        if key not in doc:
            problems.append(f"{path.name}: missing required key {key!r}")
    if not isinstance(doc.get("measured", 0.0), (int, float)):
        problems.append(f"{path.name}: 'measured' must be a number")
    for key in ("name", "gate", "date"):
        if key in doc and not isinstance(doc[key], str):
            problems.append(f"{path.name}: {key!r} must be a string")
    return problems


def main(argv: list[str] | None = None) -> int:
    paths = sorted(ROOT.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json baselines found", file=sys.stderr)
        return 1
    problems = [p for path in paths for p in check_baseline(path)]
    for line in problems:
        print(line, file=sys.stderr)
    if not problems:
        print(f"{len(paths)} baselines carry the shared schema "
              f"({', '.join(REQUIRED)})")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
