"""Cluster serving bench — scale-out, hedged tails, routed parity.

ISSUE 8's acceptance gates, all in virtual time (deterministic on any
host):

* **scaling** — a 10k-request Zipf workload through the scatter-gather
  router must complete at >= 1.5x the 1-worker qps when served by
  4 workers (2 shards x 2 replicas), with the scaled config's p99
  inside the declared SLO;
* **hedging** — with one replica injected 20x slow, turning on
  percentile hedging must cut open-loop p99 versus the same cluster
  without hedging;
* **parity** — routed replies are bit-exact against a monolithic
  server over the same store and workload.

The baseline is recorded in ``BENCH_cluster.json`` under
``BENCH_WRITE_BASELINE=1``.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.serving import render_cluster_report, render_load_result
from repro.analysis.tables import render_table
from repro.csr.builder import ensure_sorted
from repro.serve import (
    DONE,
    SLO,
    ManualClock,
    NeighborsRequest,
    ServerConfig,
    open_server,
    replay,
    run_open_loop,
    synthetic_workload,
)

from conftest import baseline_record, report

N_REQUESTS = 10_000
# a rate one worker cannot sustain (~230k qps capacity on the pokec
# stand-in) but the 4-worker layout absorbs within SLO
OFFERED_QPS = 500e3
# and one the hedged 2x2 cluster is comfortably *under*, so its tail
# comes from the injected straggler rather than queue backlog
HEDGE_OFFERED_QPS = 100e3
SLO_P99_MS = 5.0
SCALING_FLOOR = 1.5  # 4 workers must serve >= 1.5x the 1-worker qps
HEDGE_TAIL_FLOOR = 1.2  # hedged p99 must beat unhedged by >= this
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


@pytest.fixture(scope="module")
def graph(medium_standin):
    ds = medium_standin
    src, dst = ensure_sorted(
        ds.sources.astype(np.int64), ds.destinations.astype(np.int64)
    )
    return src, dst, int(ds.num_nodes)


def _config(graph, **overrides):
    src, dst, n = graph
    base = dict(
        store_kind="packed",
        edges=(src, dst, n),
        cluster=True,
        max_batch_size=64,
        max_wait_ns=50_000.0,
        queue_capacity=1 << 16,
    )
    base.update(overrides)
    return ServerConfig(**base)


def _run(config, *, offered_qps=OFFERED_QPS, slo=None, slow=None):
    router = open_server(config, clock=ManualClock())
    if slow is not None:
        worker, factor = slow
        router.workers[worker].slow_factor = factor
    result = run_open_loop(
        router, n_requests=N_REQUESTS, offered_qps=offered_qps, slo=slo
    )
    return router, result


def test_scaling_gate(graph, medium_standin):
    """The headline gate: 1 -> 4 workers scales qps >= 1.5x within SLO."""
    slo = SLO(p99_ms=SLO_P99_MS)
    layouts = [(1, 1), (2, 1), (4, 2)]
    runs = {}
    for workers, replicas in layouts:
        runs[(workers, replicas)] = _run(
            _config(graph, workers=workers, replicas=replicas), slo=slo
        )
    base = runs[(1, 1)][1]
    top_router, top = runs[(4, 2)]
    scaling = top.achieved_qps / base.achieved_qps

    rows = [
        [
            f"{w} x {r}",
            f"{res.achieved_qps:,.0f}",
            f"{res.p50_ms:.3f}",
            f"{res.p99_ms:.3f}",
            f"{res.achieved_qps / base.achieved_qps:.2f}x",
        ]
        for (w, r), (_, res) in sorted(runs.items())
    ]
    report(
        f"Cluster scaling ({N_REQUESTS} Zipf requests at "
        f"{OFFERED_QPS:,.0f} offered qps)",
        render_table(
            ["workers x replicas", "qps", "p50 (ms)", "p99 (ms)", "scaling"],
            rows,
            title=f"1 -> 4 worker scaling {scaling:.2f}x "
                  f"(floor {SCALING_FLOOR}x, SLO p99 <= {SLO_P99_MS} ms)",
        ) + "\n" + render_cluster_report(top_router),
    )

    baseline = {
        "workload": (
            f"zipf(1.2), {N_REQUESTS} requests, 25% edge queries, "
            f"{OFFERED_QPS:,.0f} offered qps (virtual time)"
        ),
        "graph": (
            f"{medium_standin.name}: {graph[2]} nodes, "
            f"{graph[0].shape[0]} edges"
        ),
        "slo_p99_ms": SLO_P99_MS,
        "layouts": {
            f"{w}x{r}": {
                "qps": res.achieved_qps,
                "p50_ms": res.p50_ms,
                "p99_ms": res.p99_ms,
                "completed": res.completed,
            }
            for (w, r), (_, res) in sorted(runs.items())
        },
        "scaling_1_to_4": scaling,
    }
    if os.environ.get("BENCH_WRITE_BASELINE") or not BASELINE_PATH.exists():
        baseline_record(
            BASELINE_PATH, {"scaling": baseline}, name="cluster",
            gate=f"4-worker qps >= {SCALING_FLOOR}x 1-worker",
            measured=scaling,
        )

    for _, res in runs.values():
        assert res.requests == N_REQUESTS
        assert res.completed == N_REQUESTS
    assert top.met, f"scaled cluster broke SLO: {'; '.join(top.violations)}"
    assert scaling >= SCALING_FLOOR, (
        f"4 workers only {scaling:.2f}x the 1-worker qps"
    )


def test_hedging_cuts_tail_latency(graph):
    """One 20x-slow replica; hedging must pull p99 back down."""
    hedge_off = _config(graph, workers=2, replicas=2)
    hedge_on = _config(graph, workers=2, replicas=2,
                       hedge_percentile=60.0, hedge_min_samples=16)
    _, unhedged = _run(hedge_off, offered_qps=HEDGE_OFFERED_QPS,
                       slow=(1, 20.0))
    router, hedged = _run(hedge_on, offered_qps=HEDGE_OFFERED_QPS,
                          slow=(1, 20.0))

    assert unhedged.completed == hedged.completed == N_REQUESTS
    assert router.hedges_launched > 0
    assert router.duplicate_completions > 0  # losers dropped, counted
    improvement = unhedged.p99_ms / hedged.p99_ms

    report(
        "Hedging under one 20x-slow replica (2 shards-equivalent load, "
        "p60 deadline)",
        render_table(
            ["mode", "qps", "p50 (ms)", "p99 (ms)"],
            [
                ["no hedging", f"{unhedged.achieved_qps:,.0f}",
                 f"{unhedged.p50_ms:.3f}", f"{unhedged.p99_ms:.3f}"],
                ["hedge @ p60", f"{hedged.achieved_qps:,.0f}",
                 f"{hedged.p50_ms:.3f}", f"{hedged.p99_ms:.3f}"],
            ],
            title=f"hedged p99 improvement {improvement:.2f}x "
                  f"(floor {HEDGE_TAIL_FLOOR}x)",
        ) + "\n" + render_load_result(hedged, title="hedged run"),
    )

    baseline = {
        "slow_factor": 20.0,
        "hedge_percentile": 60.0,
        "unhedged_p99_ms": unhedged.p99_ms,
        "hedged_p99_ms": hedged.p99_ms,
        "improvement": improvement,
        "hedges_launched": router.hedges_launched,
        "duplicate_completions": router.duplicate_completions,
    }
    if os.environ.get("BENCH_WRITE_BASELINE") or not BASELINE_PATH.exists():
        baseline_record(
            BASELINE_PATH, {"hedging": baseline}, name="cluster",
            gate=f"hedged p99 >= {HEDGE_TAIL_FLOOR}x better than unhedged",
            measured=improvement,
        )

    assert improvement >= HEDGE_TAIL_FLOOR, (
        f"hedging improved p99 only {improvement:.2f}x"
    )


def test_routed_replies_bit_exact_vs_monolithic(graph):
    """Routed scatter-gather equals a monolithic server, reply by reply."""
    src, dst, n = graph

    def workload(seed=99):
        return synthetic_workload(
            2_000, n, kind="zipf", skew=1.2, edge_fraction=0.25,
            mean_interarrival_ns=1_000.0, seed=seed,
        )

    mono = open_server(
        ServerConfig(store_kind="packed", edges=(src, dst, n),
                     max_batch_size=64, max_wait_ns=50_000.0,
                     queue_capacity=1 << 16),
        clock=ManualClock(),
    )
    router = open_server(_config(graph, workers=4, replicas=2),
                         clock=ManualClock())
    mono_slots = replay(mono, workload())
    routed_slots = replay(router, workload())
    assert len(mono_slots) == len(routed_slots) == 2_000
    mismatches = 0
    for a, b in zip(mono_slots, routed_slots):
        assert a.status == DONE and b.status == DONE
        if isinstance(a.request, NeighborsRequest):
            same = (
                a.result().dtype == b.result().dtype
                and np.array_equal(a.result(), b.result())
            )
        else:
            same = a.result() == b.result()
        mismatches += not same
    assert mismatches == 0, f"{mismatches} routed replies differ"
