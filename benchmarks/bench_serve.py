"""Serving-layer bench — micro-batch coalescing vs one-at-a-time.

The PR-1 kernels made *batches* fast; this bench shows the serving
subsystem (``repro.serve``) actually converts an open-loop stream of
independent requests into that batch advantage: coalesced serving must
beat single-request serving by >= 2x on a 10k-request Zipf workload
over the packed CSR (acceptance gate), with the baseline recorded in
``BENCH_serve.json`` under ``BENCH_WRITE_BASELINE=1``.

The wait-window sweep runs on a :class:`ManualClock` — the arrival
schedule is the timebase — so the batch-size/latency trade-off table
is fully deterministic: larger windows buy bigger batches (throughput)
at the price of queueing latency.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.serving import render_serve_report
from repro.analysis.tables import render_table
from repro import open_store
from repro.query import QueryEngine
from repro.serve import (
    DONE,
    GraphQueryServer,
    ManualClock,
    NeighborsRequest,
    ServerConfig,
    replay,
    synthetic_workload,
)

from conftest import baseline_record, report

N_REQUESTS = 10_000
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

# Acceptance bar: coalesced serving at least doubles single-request
# throughput.  Locally the measured gap is ~10-15x; the 2x floor keeps
# noisy shared CI runners from flaking while still catching a
# regression to per-request dispatch.
SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def packed(medium_standin):
    ds = medium_standin
    return open_store("packed", ds.sources, ds.destinations, ds.num_nodes)


@pytest.fixture(scope="module")
def zipf_schedule(medium_standin):
    """10k-request Zipf workload factory (fresh request objects per call,
    since submit mutates tickets/timestamps in place)."""
    ds = medium_standin

    def make(mean_interarrival_ns=0.0, seed=17):
        return synthetic_workload(
            N_REQUESTS,
            ds.num_nodes,
            kind="zipf",
            skew=1.2,
            edge_fraction=0.25,
            mean_interarrival_ns=mean_interarrival_ns,
            edges=(ds.sources, ds.destinations),
            seed=seed,
        )

    return make


def _serve_wallclock(store, workload, *, batch, wait_us, cache_elements=0):
    server = GraphQueryServer(
        store,
        config=ServerConfig(
            cache_elements=cache_elements,
            max_batch_size=batch,
            max_wait_ns=wait_us * 1e3,
            queue_capacity=1 << 16,
            policy="block",
        ),
    )
    t0 = time.perf_counter()
    for _, request in workload:
        server.submit(request)
    server.drain()
    return server, time.perf_counter() - t0


def test_coalesced_vs_single_request_throughput(packed, zipf_schedule):
    """The tentpole gate: coalescing >= 2x single-request serving, with
    replies spot-checked bit-exact against direct QueryEngine calls."""
    single_srv, single_s = _serve_wallclock(
        packed, zipf_schedule(), batch=1, wait_us=0.0
    )
    coal_srv, coal_s = _serve_wallclock(
        packed, zipf_schedule(), batch=256, wait_us=500.0
    )
    single = single_srv.snapshot(elapsed_s=single_s)
    coal = coal_srv.snapshot(elapsed_s=coal_s)
    assert single.completed == coal.completed == N_REQUESTS
    speedup = coal.throughput_rps / single.throughput_rps

    baseline = {
        "workload": f"zipf(1.2), {N_REQUESTS} requests, 25% edge queries",
        "store": repr(packed),
        "single_request": {
            "seconds": single_s,
            "requests_per_s": single.throughput_rps,
        },
        "coalesced": {
            "max_batch": 256,
            "wait_us": 500.0,
            "seconds": coal_s,
            "requests_per_s": coal.throughput_rps,
            "mean_batch_size": coal.mean_batch_size,
            "duplicates_coalesced": coal.duplicates_coalesced,
        },
        "speedup": speedup,
    }
    if os.environ.get("BENCH_WRITE_BASELINE") or not BASELINE_PATH.exists():
        baseline_record(
            BASELINE_PATH, baseline, name="serve",
            gate=f"coalesced >= {SPEEDUP_FLOOR}x single-request throughput",
            measured=speedup,
        )

    report(
        f"Serving throughput: coalesced vs single-request ({N_REQUESTS} Zipf requests)",
        render_table(
            ["mode", "batch", "seconds", "req/s"],
            [
                ["single-request", 1, f"{single_s:.3f}",
                 f"{single.throughput_rps:,.0f}"],
                ["coalesced", 256, f"{coal_s:.3f}",
                 f"{coal.throughput_rps:,.0f}"],
            ],
            title=f"coalesced speedup {speedup:.1f}x (floor {SPEEDUP_FLOOR}x)",
        ),
    )
    assert speedup >= SPEEDUP_FLOOR, f"coalescing only {speedup:.2f}x"


def test_serving_replies_bit_exact_sample(packed, zipf_schedule):
    """Every reply of a served workload equals the direct engine answer."""
    engine = QueryEngine(packed)
    server = GraphQueryServer(
        packed,
        config=ServerConfig(
            max_batch_size=128, max_wait_ns=0.0, queue_capacity=1 << 16
        ),
    )
    slots = [server.submit(req) for _, req in zipf_schedule(seed=43)[:2_000]]
    server.drain()
    for slot in slots:
        assert slot.status == DONE
        req = slot.request
        if isinstance(req, NeighborsRequest):
            assert np.array_equal(slot.result(), engine.neighbors([req.node])[0])
        else:
            assert slot.result() == bool(engine.has_edges([(req.u, req.v)])[0])


def test_batch_wait_latency_tradeoff(packed, zipf_schedule):
    """Deterministic virtual-time sweep: larger wait windows buy larger
    batches at a queueing-latency cost (the serving layer's knob)."""
    rows = []
    batch_means, p95s = [], []
    for wait_us in (0.0, 10.0, 50.0, 200.0, 1000.0):
        clock = ManualClock()
        server = GraphQueryServer(
            packed,
            config=ServerConfig(
                max_batch_size=256,
                max_wait_ns=wait_us * 1e3,
                queue_capacity=1 << 16,
            ),
            clock=clock,
        )
        replay(server, zipf_schedule(mean_interarrival_ns=1_000.0, seed=31))
        snap = server.snapshot()
        assert snap.completed == N_REQUESTS
        rows.append([
            f"{wait_us:.0f}",
            f"{snap.mean_batch_size:.1f}",
            f"{snap.wait_ns_p50 / 1e3:.1f}",
            f"{snap.wait_ns_p95 / 1e3:.1f}",
            f"{snap.latency_ns_p95 / 1e3:.1f}",
            snap.batches,
        ])
        batch_means.append(snap.mean_batch_size)
        p95s.append(snap.wait_ns_p95)
    # the trade-off must actually trade: batches grow, waiting grows
    assert all(a <= b + 1e-9 for a, b in zip(batch_means, batch_means[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(p95s, p95s[1:]))
    assert batch_means[-1] > 4 * batch_means[0]
    report(
        "Batch-wait window vs latency (virtual time, 1us mean interarrival)",
        render_table(
            ["wait window (us)", "mean batch", "wait p50 (us)",
             "wait p95 (us)", "latency p95 (us)", "batches"],
            rows,
            title="micro-batch coalescer trade-off (deterministic ManualClock)",
        ),
    )


def test_serve_metrics_snapshot_report(packed, zipf_schedule):
    """One full serving report — metrics, histograms, row cache — the
    observability surface the ROADMAP's ops story needs."""
    server, elapsed = _serve_wallclock(
        packed, zipf_schedule(seed=59), batch=256, wait_us=500.0,
        cache_elements=200_000,
    )
    snap = server.snapshot(elapsed_s=elapsed)
    assert snap.duplicates_coalesced > 0  # zipf traffic dedups in-batch
    assert server.row_cache is not None
    assert server.row_cache.stats().hit_rate > 0.2
    report(
        "Serving report (coalesced, row-cached, Zipf traffic)",
        render_serve_report(snap, server.row_cache),
    )
