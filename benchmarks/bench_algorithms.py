"""CSR-consumer workloads — SpMV, PageRank, BFS on the built structure.

The point of a fast-to-build, cheap-to-store CSR is what runs on top of
it ("efficient parallel graph processing", the paper's conclusion).
These benches wall-clock the real kernels and sweep the simulated
machine to show the downstream workloads inherit the parallel scaling.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_series
from repro import open_store
from repro.csr import bfs_levels, pagerank, spmv
from repro.parallel import SerialExecutor, SimulatedMachine

from conftest import report


@pytest.fixture(scope="module")
def graph(medium_standin):
    ds = medium_standin
    return open_store("csr-serial", ds.sources, ds.destinations, ds.num_nodes)


@pytest.fixture(scope="module")
def vector(graph):
    return np.random.default_rng(53).random(graph.num_nodes)


def test_spmv_wallclock(benchmark, graph, vector):
    y = benchmark(spmv, graph, vector, SerialExecutor())
    assert y.shape == (graph.num_nodes,)


def test_pagerank_wallclock(benchmark, graph):
    pr = benchmark.pedantic(
        pagerank, args=(graph,), kwargs={"tol": 1e-6}, rounds=3, iterations=1
    )
    assert pr.sum() == pytest.approx(1.0, abs=1e-6)


def test_bfs_wallclock(benchmark, graph):
    hub = int(np.argmax(graph.degrees()))
    levels = benchmark.pedantic(
        bfs_levels, args=(graph, hub, SerialExecutor()), rounds=3, iterations=1
    )
    assert levels[hub] == 0


def test_algorithm_scaling_report(benchmark, graph, vector):
    hub = int(np.argmax(graph.degrees()))

    def sweep():
        series = {
            "spmv (edge-balanced)": {},
            "spmv (node-balanced)": {},
            "pagerank(5 iters)": {},
            "bfs": {},
        }
        for p in (1, 4, 16, 64):
            m = SimulatedMachine(p)
            spmv(graph, vector, m, balance="edges")
            series["spmv (edge-balanced)"][p] = m.elapsed_ms()
            m = SimulatedMachine(p)
            spmv(graph, vector, m, balance="nodes")
            series["spmv (node-balanced)"][p] = m.elapsed_ms()
            m = SimulatedMachine(p)
            pagerank(graph, m, tol=0.0 + 1e-30, max_iter=5)
            series["pagerank(5 iters)"][p] = m.elapsed_ms()
            m = SimulatedMachine(p)
            bfs_levels(graph, hub, m)
            series["bfs"][p] = m.elapsed_ms()
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # edge-balanced partitioning defeats power-law imbalance...
    assert series["spmv (edge-balanced)"][64] < series["spmv (edge-balanced)"][1] / 20
    # ...which naive node ranges cannot (hub rows serialise on one proc)
    assert series["spmv (node-balanced)"][64] > series["spmv (edge-balanced)"][64] * 2
    assert series["pagerank(5 iters)"][64] < series["pagerank(5 iters)"][1] / 3
    report(
        "Downstream algorithms: simulated ms vs processors (pokec stand-in)",
        render_series("CSR consumers", series),
    )
