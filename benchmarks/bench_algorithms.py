"""CSR-consumer workloads — SpMV, PageRank, BFS on the built structure.

The point of a fast-to-build, cheap-to-store CSR is what runs on top of
it ("efficient parallel graph processing", the paper's conclusion).
These benches wall-clock the real kernels and sweep the simulated
machine to show the downstream workloads inherit the parallel scaling.

The second half exercises the store-generic engine
(:mod:`repro.algorithms`) across registered store kinds, parity-gated
against the raw-CSR kernels above: the same answers must come out of a
bit-packed, compact-coded, or log-structured store as out of the plain
index arrays.
"""

import numpy as np
import pytest

from repro.algorithms import run as run_algorithm
from repro.analysis.tables import render_series, render_table
from repro import open_store
from repro.csr import bfs_levels, pagerank, spmv
from repro.parallel import SerialExecutor, SimulatedMachine

from conftest import report


@pytest.fixture(scope="module")
def graph(medium_standin):
    ds = medium_standin
    return open_store("csr-serial", ds.sources, ds.destinations, ds.num_nodes)


@pytest.fixture(scope="module")
def vector(graph):
    return np.random.default_rng(53).random(graph.num_nodes)


def test_spmv_wallclock(benchmark, graph, vector):
    y = benchmark(spmv, graph, vector, SerialExecutor())
    assert y.shape == (graph.num_nodes,)


def test_pagerank_wallclock(benchmark, graph):
    pr = benchmark.pedantic(
        pagerank, args=(graph,), kwargs={"tol": 1e-6}, rounds=3, iterations=1
    )
    assert pr.sum() == pytest.approx(1.0, abs=1e-6)


def test_bfs_wallclock(benchmark, graph):
    hub = int(np.argmax(graph.degrees()))
    levels = benchmark.pedantic(
        bfs_levels, args=(graph, hub, SerialExecutor()), rounds=3, iterations=1
    )
    assert levels[hub] == 0


def test_algorithm_scaling_report(benchmark, graph, vector):
    hub = int(np.argmax(graph.degrees()))

    def sweep():
        series = {
            "spmv (edge-balanced)": {},
            "spmv (node-balanced)": {},
            "pagerank(5 iters)": {},
            "bfs": {},
        }
        for p in (1, 4, 16, 64):
            m = SimulatedMachine(p)
            spmv(graph, vector, m, balance="edges")
            series["spmv (edge-balanced)"][p] = m.elapsed_ms()
            m = SimulatedMachine(p)
            spmv(graph, vector, m, balance="nodes")
            series["spmv (node-balanced)"][p] = m.elapsed_ms()
            m = SimulatedMachine(p)
            pagerank(graph, m, tol=0.0 + 1e-30, max_iter=5)
            series["pagerank(5 iters)"][p] = m.elapsed_ms()
            m = SimulatedMachine(p)
            bfs_levels(graph, hub, m)
            series["bfs"][p] = m.elapsed_ms()
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # edge-balanced partitioning defeats power-law imbalance...
    assert series["spmv (edge-balanced)"][64] < series["spmv (edge-balanced)"][1] / 20
    # ...which naive node ranges cannot (hub rows serialise on one proc)
    assert series["spmv (node-balanced)"][64] > series["spmv (edge-balanced)"][64] * 2
    assert series["pagerank(5 iters)"][64] < series["pagerank(5 iters)"][1] / 3
    report(
        "Downstream algorithms: simulated ms vs processors (pokec stand-in)",
        render_series("CSR consumers", series),
    )


# --- store-generic analytics engine, parity-gated ----------------------

ENGINE_KINDS = ("packed", "compact", "lsm")


@pytest.fixture(scope="module")
def engine_stores(medium_standin):
    """Stores of every engine kind plus the raw-CSR reference graph.

    The edge list is deduplicated first: the lsm store's merged view is
    a *set* of edges, so parity against plain CSR (which keeps
    duplicate rows) is only meaningful on the deduplicated graph.
    """
    ds = medium_standin
    pairs = np.unique(np.stack(
        [ds.sources.astype(np.int64), ds.destinations.astype(np.int64)], 1
    ), axis=0)
    src, dst = pairs[:, 0], pairs[:, 1]
    stores = {
        kind: open_store(kind, src, dst, ds.num_nodes, sort=True)
        for kind in ENGINE_KINDS
    }
    return stores, open_store("csr-serial", src, dst, ds.num_nodes)


def test_engine_bfs_matches_kernel_across_kinds(benchmark, engine_stores):
    engine_stores, ref_graph = engine_stores
    hub = int(np.argmax(ref_graph.degrees()))
    ref = bfs_levels(ref_graph, hub)
    packed = engine_stores["packed"]
    res = benchmark.pedantic(
        run_algorithm, args=("bfs", packed), kwargs={"source": hub},
        rounds=3, iterations=1,
    )
    assert np.array_equal(res.value, ref)
    for kind, store in engine_stores.items():
        got = run_algorithm("bfs", store, source=hub)
        assert np.array_equal(got.value, ref), f"bfs differs on {kind}"


def test_engine_pagerank_matches_kernel_across_kinds(benchmark, engine_stores):
    engine_stores, ref_graph = engine_stores
    ref = pagerank(ref_graph, max_iter=5)
    packed = engine_stores["packed"]
    res = benchmark.pedantic(
        run_algorithm, args=("pagerank", packed), kwargs={"max_iter": 5},
        rounds=1, iterations=1,
    )
    assert np.allclose(res.value, ref, atol=1e-12)
    for kind, store in engine_stores.items():
        got = run_algorithm("pagerank", store, max_iter=5)
        assert np.allclose(got.value, ref, atol=1e-12), f"pagerank differs on {kind}"


def test_engine_triangles_matches_bruteforce_across_kinds(benchmark):
    # bounded-degree graph: the exact wedge scan is quadratic in degree,
    # so the power-law stand-in is out of reach for an *exact* count
    from repro.datasets import er_edges

    src, dst, n = er_edges(1_500, 9_000, rng=np.random.default_rng(41))
    pairs = np.unique(np.stack([src, dst], 1), axis=0)
    src, dst = pairs[:, 0], pairs[:, 1]
    adj = np.zeros((n, n), dtype=np.int64)
    adj[src, dst] = 1
    # ordered wedges (u; v, w) with v != w closed by edge (v, w) — the
    # engine's count; = 6x triangles when the graph is symmetric
    ref = int(np.einsum("uv,uw,vw->", adj, adj, adj))
    ref -= int(np.einsum("uv,vv->", adj, adj))  # drop v == w self-loop terms
    stores = {
        kind: open_store(kind, src, dst, n, sort=True)
        for kind in ENGINE_KINDS
    }
    res = benchmark.pedantic(
        run_algorithm, args=("triangles", stores["packed"]),
        rounds=1, iterations=1,
    )
    assert int(res.value) == ref
    for kind, store in stores.items():
        got = run_algorithm("triangles", store)
        assert int(got.value) == ref, f"triangles differ on {kind}"


def test_engine_scaling_report(engine_stores):
    """The engine inherits the kernels' simulated scaling on any store."""
    engine_stores, ref_graph = engine_stores
    hub = int(np.argmax(ref_graph.degrees()))
    packed = engine_stores["packed"]
    series = {"bfs (engine/packed)": {}, "pagerank (engine/packed)": {}}
    for p in (1, 2, 4):
        m = SimulatedMachine(p)
        run_algorithm("bfs", packed, m, source=hub)
        series["bfs (engine/packed)"][p] = m.elapsed_ms()
        m = SimulatedMachine(p)
        run_algorithm("pagerank", packed, m, max_iter=5)
        series["pagerank (engine/packed)"][p] = m.elapsed_ms()
    for name, times in series.items():
        assert times[4] < times[1], f"{name} does not scale at all"
    report(
        "Store-generic analytics engine: simulated ms vs processors",
        render_series("algorithms engine", series),
    )
