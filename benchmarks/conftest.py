"""Benchmark harness plumbing.

Benches register paper-style tables/figures via :func:`report`; a
``pytest_terminal_summary`` hook prints everything at the end of the
run so the artifacts survive pytest's output capture and land in
``bench_output.txt``.  Session-scoped dataset fixtures keep generation
out of the timed regions.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.datasets import churn_events, standin

_REPORTS: list[tuple[str, str]] = []


def report(title: str, body: str) -> None:
    """Queue a rendered artifact for the end-of-run summary."""
    _REPORTS.append((title, body))


def baseline_record(path, payload: dict, *, name: str, gate: str,
                    measured: float) -> None:
    """Write (or update in place) a ``BENCH_*.json`` baseline.

    Every baseline carries the shared schema keys ``name`` (which
    bench), ``gate`` (the acceptance bar, human-readable), ``measured``
    (the number the gate was checked against), and ``date`` — the keys
    ``check_bench_baselines.py`` validates in CI — plus the bench's own
    *payload* merged on top.  Existing files are read first so
    multi-test benches each keep their own sections.
    """
    doc = json.loads(path.read_text()) if path.exists() else {}
    doc.update(payload)
    doc["name"] = name
    doc["gate"] = gate
    doc["measured"] = float(measured)
    doc["date"] = time.strftime("%Y-%m-%d")
    path.write_text(json.dumps(doc, indent=2) + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("paper artifacts (reproduced)")
    for title, body in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {title} ===")
        for line in body.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Fraction of paper edge counts used by the bench stand-ins."""
    return 1 / 64


@pytest.fixture(scope="session")
def standins(bench_scale):
    """All four Table II stand-ins, generated once per session."""
    return {
        name: standin(name, scale=bench_scale)
        for name in ("livejournal", "pokec", "orkut", "webnotredame")
    }


@pytest.fixture(scope="session")
def medium_standin():
    """A single mid-size graph for per-kernel benches."""
    return standin("pokec", scale=1 / 64)


@pytest.fixture(scope="session")
def event_stream():
    """A churny temporal workload for the TCSR benches."""
    return churn_events(
        5_000,
        40_000,
        32,
        add_per_frame=2_000,
        delete_per_frame=1_200,
        rng=np.random.default_rng(2023),
    )
