"""Bandwidth-contention ablation — recovering the paper's per-graph spread.

The default cost model gives nearly identical speed-up percentages for
all four graphs, while the paper's Table II spreads from 83.8% (Orkut)
to 96.2% (WebNotreDame) at p=64.  EXPERIMENTS.md attributes the spread
to memory-bus saturation; this bench *tests* that attribution by
switching on the simulator's opt-in cache+bandwidth term (phase time
floored at uncached-traffic / bandwidth) and checking the paper's
ordering emerges: the bigger the graph, the earlier it saturates.
"""

import pytest

from repro.analysis.tables import render_table
from repro import open_store
from repro.datasets import PAPER_GRAPHS, standin
from repro.parallel import SimulatedMachine

from conftest import report

CACHE_BYTES = 4 * 1024 * 1024  # scaled-down LLC for the 1/64-scale stand-ins
BANDWIDTH = 25.0  # bytes/ns shared across processors
MIN_EDGES = 400_000  # same floor as the Table II harness


@pytest.fixture(scope="module")
def floored_standins():
    out = {}
    for name, spec in PAPER_GRAPHS.items():
        scale = min(1.0, max(1 / 64, MIN_EDGES / spec.num_edges))
        out[name] = standin(name, scale=scale)
    return out


def measure(ds, p, *, contention):
    kwargs = (
        {"memory_bandwidth_gbs": BANDWIDTH, "cache_bytes": CACHE_BYTES}
        if contention
        else {}
    )
    machine = SimulatedMachine(p, **kwargs)
    open_store("packed", ds.sources, ds.destinations, ds.num_nodes, executor=machine)
    return machine.elapsed_ms()


def test_contention_recovers_per_graph_spread(benchmark, floored_standins):
    def sweep():
        rows = []
        for name, ds in floored_standins.items():
            t1_plain = measure(ds, 1, contention=False)
            t64_plain = measure(ds, 64, contention=False)
            t1_bus = measure(ds, 1, contention=True)
            t64_bus = measure(ds, 64, contention=True)
            rows.append(
                [
                    name,
                    ds.num_edges,
                    (1 - t64_plain / t1_plain) * 100,
                    (1 - t64_bus / t1_bus) * 100,
                    PAPER_GRAPHS[name].speedup_pct[64],
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    plain = {r[0]: r[2] for r in rows}
    bus = {r[0]: r[3] for r in rows}
    paper = {r[0]: r[4] for r in rows}
    # without contention the spread is tiny...
    assert max(plain.values()) - min(plain.values()) < 2.0
    # ...with it, a clear spread appears
    assert max(bus.values()) - min(bus.values()) > 4.0
    # and the ordering matches the paper's: orkut saturates lowest,
    # webnotredame scales best
    assert min(bus, key=bus.get) == min(paper, key=paper.get) == "orkut"
    assert bus["webnotredame"] > bus["livejournal"] > bus["orkut"]
    # absolute agreement at the saturating end is striking — keep an
    # assertion loose enough to survive regeneration
    assert abs(bus["orkut"] - paper["orkut"]) < 5.0
    report(
        "Contention ablation: speed-up@64 (%) with and without the "
        f"cache+bandwidth term (cache {CACHE_BYTES // 2**20} MiB, "
        f"{BANDWIDTH:.0f} B/ns)",
        render_table(
            ["graph", "edges", "no contention", "with contention", "paper"],
            rows,
        ),
    )
