"""Figure 6 — construction time vs number of processors (4 curves).

The paper's observed shape: "a rapid decline is seen when going from 1
processor to 4, then a steady decline with 8 and 16, followed by a
decent drop in time with 64 processors."  The assertions below encode
exactly that, and the rendered series lands in the terminal summary.
"""

import pytest

from repro.analysis.compare import check_fig6, render_checks
from repro.analysis.experiments import render_fig6, run_fig6

from conftest import report


def test_fig6_time_vs_processors(benchmark, bench_scale):
    def run():
        return run_fig6(scale=bench_scale)

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, curve in curves.items():
        t = curve.times_ms
        # monotone decreasing over the sweep
        ordered = [t[p] for p in sorted(t)]
        assert ordered == sorted(ordered, reverse=True), name
        # rapid decline 1 -> 4: more than half the time gone
        assert t[4] < 0.55 * t[1], name
        # steady decline 8 -> 16: improvement, but less than 2x
        assert t[16] < t[8] < 2.2 * t[16], name
        # decent further drop by 64
        assert t[64] < 0.8 * t[16], name
    checks = check_fig6(curves)
    assert all(c.passed for c in checks), [c.claim for c in checks if not c.passed]
    report("Figure 6 (reproduced)", render_fig6(curves))
    report("Figure 6 shape verdicts", render_checks("claims vs measured", checks))
