"""Section III-A3 ablation — which codec should pack the CSR arrays?

Bits per edge for the column array under every registered codec, raw
and gap-transformed, per stand-in graph.  The paper packs fixed-width;
this bench quantifies what gap + fixed (and the variable-length codes)
buy on social topologies.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.bitpack import available_codecs, get_codec, row_gaps
from repro import open_store

from conftest import report


@pytest.fixture(scope="module")
def graphs(standins):
    out = {}
    for name, ds in standins.items():
        # cap the payload so the scalar Elias coders stay quick
        src = ds.sources[:300_000]
        dst = ds.destinations[:300_000]
        n = ds.num_nodes
        out[name] = open_store("csr-serial", src, dst, n)
    return out


@pytest.mark.parametrize("codec_name", ["fixed", "varint", "elias_gamma", "elias_delta"])
def test_codec_encode_wallclock(benchmark, graphs, codec_name):
    payload = row_gaps(graphs["pokec"].indptr, graphs["pokec"].indices)[:100_000]
    codec = get_codec(codec_name)
    enc = benchmark(codec.encode, payload)
    assert enc.nbits > 0


def test_codec_size_matrix(benchmark, graphs):
    def build_matrix():
        rows = []
        for name, g in graphs.items():
            m = g.num_edges
            if m == 0:
                continue
            gaps = row_gaps(g.indptr, g.indices)
            row = [name]
            for codec_name in sorted(available_codecs()):
                codec = get_codec(codec_name)
                raw_bits = codec.encode(np.asarray(g.indices)).nbits / m
                gap_bits = codec.encode(gaps).nbits / m
                row.append(f"{raw_bits:.1f}/{gap_bits:.1f}")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    headers = ["graph"] + [f"{c} raw/gap" for c in sorted(available_codecs())]
    # gap transform must help the universal codes on sorted social rows
    report(
        "Codec ablation: column-array bits/edge (raw / gap-transformed)",
        render_table(headers, rows),
    )
    assert len(rows) == 4


def test_representation_comparison(benchmark, graphs):
    """Whole-structure bits/edge: the paper's packed CSR vs the
    gap-transformed variant vs the related-work k²-tree [18]."""

    def build():
        rows = []
        for name, g in graphs.items():
            if g.num_edges == 0:
                continue
            edges = (*g.edges(), g.num_nodes)
            packed = open_store("packed", *edges)
            gap = open_store("gap", *edges)
            k2 = open_store("k2tree", *edges)
            rows.append(
                [
                    name,
                    f"{packed.bits_per_edge():.2f}",
                    f"{gap.bits_per_edge():.2f}",
                    f"{k2.bits_per_edge():.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "Representation comparison: total bits/edge",
        render_table(["graph", "bit-packed CSR (paper)", "gap + packed", "k2-tree [18]"], rows),
    )
    assert len(rows) == 4
