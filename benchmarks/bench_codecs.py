"""Section III-A3 ablation — which codec should pack the CSR arrays?

Bits per edge for the column array under every registered codec, raw
and gap-transformed, per stand-in graph.  The paper packs fixed-width;
this bench quantifies what gap + fixed (and the variable-length codes)
buy on social topologies.

Also home of the **compact pipeline gate** (DESIGN.md §9): degree
reordering + adaptive per-segment codecs must reach <= 12.8 bits/edge
on the pokec stand-in while serving the Zipf workload at >= 1.0x the
fixed-width packed qps (CI asserts a relaxed 0.4x floor — shared
runners are noisy; the bits/edge bound is deterministic and holds
everywhere).  Baselines land in ``BENCH_codecs.json`` under
``BENCH_WRITE_BASELINE=1`` (or when the file is missing).
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.bitpack import available_codecs, get_codec, row_gaps
from repro import open_store
from repro.query import batch_edge_existence
from repro.serve import zipf_nodes

from conftest import baseline_record, report

N_QUERIES = 10_000
SKEW = 1.2
BITS_PER_EDGE_GATE = 12.8
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_codecs.json"

# Local bar per ISSUE acceptance: the reordered+compact store serves the
# Zipf batch workload at least as fast as the fixed-width packed path
# (dedup + smaller decode widths more than pay for the id translation).
# CI runners are noisy, so CI asserts a 0.4x floor.
QPS_FLOOR = 0.4 if os.environ.get("CI") else 1.0


@pytest.fixture(scope="module")
def graphs(standins):
    out = {}
    for name, ds in standins.items():
        # cap the payload so the scalar Elias coders stay quick
        src = ds.sources[:300_000]
        dst = ds.destinations[:300_000]
        n = ds.num_nodes
        out[name] = open_store("csr-serial", src, dst, n)
    return out


@pytest.mark.parametrize("codec_name", ["fixed", "varint", "elias_gamma", "elias_delta"])
def test_codec_encode_wallclock(benchmark, graphs, codec_name):
    payload = row_gaps(graphs["pokec"].indptr, graphs["pokec"].indices)[:100_000]
    codec = get_codec(codec_name)
    enc = benchmark(codec.encode, payload)
    assert enc.nbits > 0


def test_codec_size_matrix(benchmark, graphs):
    def build_matrix():
        rows = []
        for name, g in graphs.items():
            m = g.num_edges
            if m == 0:
                continue
            gaps = row_gaps(g.indptr, g.indices)
            row = [name]
            for codec_name in sorted(available_codecs()):
                codec = get_codec(codec_name)
                raw_bits = codec.encode(np.asarray(g.indices)).nbits / m
                gap_bits = codec.encode(gaps).nbits / m
                row.append(f"{raw_bits:.1f}/{gap_bits:.1f}")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    headers = ["graph"] + [f"{c} raw/gap" for c in sorted(available_codecs())]
    # gap transform must help the universal codes on sorted social rows
    report(
        "Codec ablation: column-array bits/edge (raw / gap-transformed)",
        render_table(headers, rows),
    )
    assert len(rows) == 4


def test_representation_comparison(benchmark, graphs):
    """Whole-structure bits/edge: the paper's packed CSR vs the
    gap-transformed variant vs the related-work k²-tree [18]."""

    def build():
        rows = []
        for name, g in graphs.items():
            if g.num_edges == 0:
                continue
            edges = (*g.edges(), g.num_nodes)
            packed = open_store("packed", *edges)
            gap = open_store("gap", *edges)
            k2 = open_store("k2tree", *edges)
            rows.append(
                [
                    name,
                    f"{packed.bits_per_edge():.2f}",
                    f"{gap.bits_per_edge():.2f}",
                    f"{k2.bits_per_edge():.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "Representation comparison: total bits/edge",
        render_table(["graph", "bit-packed CSR (paper)", "gap + packed", "k2-tree [18]"], rows),
    )
    assert len(rows) == 4


# --- compact pipeline: reordering x adaptive codecs ---------------------


@pytest.fixture(scope="module")
def mono(medium_standin):
    ds = medium_standin
    return open_store("packed", ds.sources, ds.destinations, ds.num_nodes)


@pytest.fixture(scope="module")
def compact_reordered(medium_standin):
    ds = medium_standin
    return open_store(
        "reordered", ds.sources, ds.destinations, ds.num_nodes,
        order="degree", inner="compact", codecs="auto",
    )


@pytest.fixture(scope="module")
def workload(medium_standin):
    """10k Zipf node lookups + 10k Zipf-source edge probes, half planted."""
    ds = medium_standin
    n = ds.num_nodes
    rng = np.random.default_rng(17)
    unodes = zipf_nodes(N_QUERIES, n, SKEW, rng=rng)
    qs = np.stack(
        [zipf_nodes(N_QUERIES, n, SKEW, rng=rng), rng.integers(0, n, N_QUERIES)],
        axis=1,
    )
    picks = rng.integers(0, ds.num_edges, N_QUERIES // 2)
    qs[: N_QUERIES // 2, 0] = ds.sources[picks]
    qs[: N_QUERIES // 2, 1] = ds.destinations[picks]
    return unodes, qs


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _serve_workload(store, unodes, qs):
    flat_offs = store.neighbors_batch(unodes)
    hits = batch_edge_existence(store, qs)
    return flat_offs, hits


def test_compact_bitexact_on_workload(mono, compact_reordered, workload):
    unodes, qs = workload
    (want_flat, want_offs), want_hits = _serve_workload(mono, unodes, qs)
    (got_flat, got_offs), got_hits = _serve_workload(
        compact_reordered, unodes, qs
    )
    assert np.array_equal(got_offs, want_offs)
    assert np.array_equal(
        np.asarray(got_flat, dtype=np.int64), np.asarray(want_flat, dtype=np.int64)
    )
    assert np.array_equal(got_hits, want_hits)


def test_compact_pipeline_gate(mono, compact_reordered, workload):
    """The headline gate: degree reordering + adaptive codecs at
    <= 12.8 bits/edge, serving no slower than the fixed-width path."""
    unodes, qs = workload
    total = 2 * N_QUERIES
    bits = compact_reordered.bits_per_edge()

    _serve_workload(compact_reordered, unodes, qs)  # warm
    t_mono, _ = _best_of(lambda: _serve_workload(mono, unodes, qs))
    t_compact, _ = _best_of(
        lambda: _serve_workload(compact_reordered, unodes, qs)
    )
    ratio = t_mono / t_compact

    breakdown = compact_reordered.inner.codec_breakdown()
    baseline = {
        "store": "ReorderedStore(degree) over CompactStore(auto), "
                 "pokec stand-in, 1/64 scale",
        "workload": f"{N_QUERIES} zipf({SKEW}) neighbors + "
                    f"{N_QUERIES} edge probes",
        "graph": {
            "nodes": int(mono.num_nodes), "edges": int(mono.num_edges)
        },
        "packed_bits_per_edge": mono.bits_per_edge(),
        "compact_bits_per_edge": bits,
        "codec_breakdown": {
            name: {k: int(v) for k, v in row.items()}
            for name, row in sorted(breakdown.items())
        },
        "mono_s": t_mono,
        "compact_s": t_compact,
        "qps_ratio": ratio,
        "compact_qps": total / t_compact,
    }
    # refresh the committed baseline only on request — a plain test run
    # must not dirty the working tree with this machine's numbers
    if os.environ.get("BENCH_WRITE_BASELINE") or not BASELINE_PATH.exists():
        baseline_record(
            BASELINE_PATH, baseline, name="codecs",
            gate=(f"<= {BITS_PER_EDGE_GATE} bits/edge and "
                  f">= {QPS_FLOOR}x packed-fixed qps"),
            measured=ratio,
        )

    report(
        f"Compact pipeline gate ({N_QUERIES}-query Zipf workload)",
        render_table(
            ["store", "bits/edge", "workload ms", "qps ratio"],
            [
                ["packed fixed (paper)", f"{mono.bits_per_edge():.2f}",
                 f"{t_mono * 1e3:.1f}", "1.00x"],
                ["degree + compact", f"{bits:.2f}",
                 f"{t_compact * 1e3:.1f}", f"{ratio:.2f}x"],
            ],
            title=(f"gates: <= {BITS_PER_EDGE_GATE} bits/edge, "
                   f">= {QPS_FLOOR}x qps"),
        ),
    )
    assert bits <= BITS_PER_EDGE_GATE, (
        f"compact pipeline at {bits:.2f} bits/edge "
        f"(gate {BITS_PER_EDGE_GATE})"
    )
    assert ratio >= QPS_FLOOR, (
        f"compact qps fell to {ratio:.2f}x of packed fixed "
        f"(floor {QPS_FLOOR}x)"
    )


def test_ordering_codec_sweep(medium_standin):
    """Bits/edge for every ordering x codec-candidate set — the
    EXPERIMENTS.md table quantifying what each half of the pipeline
    buys on its own."""
    ds = medium_standin
    edges = (ds.sources, ds.destinations, ds.num_nodes)
    packed = open_store("packed", *edges)
    candidate_sets = [
        ("fixed", ("fixed",)),
        ("varint", ("varint",)),
        ("auto", "auto"),
        ("auto+zeta", ("fixed", "varint", "zeta2", "zeta3", "zeta4")),
    ]
    rows = []
    for order in ("natural", "degree", "bfs", "slashburn"):
        row = [order]
        for _, codecs in candidate_sets:
            store = open_store(
                "reordered", *edges, order=order, inner="compact",
                codecs=codecs,
            )
            row.append(f"{store.bits_per_edge():.2f}")
        rows.append(row)
    report(
        "Compact pipeline sweep: bits/edge by ordering x codec candidates "
        f"(pokec stand-in; packed fixed = {packed.bits_per_edge():.2f})",
        render_table(
            ["ordering"] + [label for label, _ in candidate_sets], rows
        ),
    )
    assert len(rows) == 4
