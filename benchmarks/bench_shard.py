"""Scatter-gather sharded store vs the monolithic packed CSR.

The gate: on a 10k-query Zipf workload (hot hubs repeated, the serving
regime the sharded layout targets) the sharded store's batched query
path must run at **parity or better** with the monolithic store.  The
shard-level deduplication is what pays for the scatter/gather copies —
each hot row is decoded once per shard instead of once per query.

Also asserts exact simulated-cost parity (the sharded store charges
the machine what the monolithic store would) and sweeps shard count x
partitioner for the EXPERIMENTS.md table.  The measured throughput
baseline lands in ``BENCH_shard.json`` under ``BENCH_WRITE_BASELINE=1``
(or when the file is missing).
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import open_store
from repro.analysis.tables import render_table
from repro.parallel import SerialExecutor, SimulatedMachine
from repro.query import batch_edge_existence, batch_neighbors
from repro.serve import zipf_nodes

from conftest import baseline_record, report

N_QUERIES = 10_000
SKEW = 1.2
SHARDS = 4
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard.json"

# Local acceptance bar: the sharded scatter-gather path serves the
# Zipf workload at >= 1x monolithic throughput (measured ~1.5-1.8x —
# dedup beats the gather copies).  Shared CI runners are noisy, so CI
# only asserts the sharded path stays within 2x of monolithic.
PARITY_FLOOR = 0.5 if os.environ.get("CI") else 1.0


@pytest.fixture(scope="module")
def mono(medium_standin):
    ds = medium_standin
    return open_store("packed", ds.sources, ds.destinations, ds.num_nodes)


@pytest.fixture(scope="module")
def workload(medium_standin):
    """10k Zipf node lookups + 10k Zipf-source edge probes, half planted."""
    ds = medium_standin
    n = ds.num_nodes
    rng = np.random.default_rng(17)
    unodes = zipf_nodes(N_QUERIES, n, SKEW, rng=rng)
    qs = np.stack(
        [zipf_nodes(N_QUERIES, n, SKEW, rng=rng), rng.integers(0, n, N_QUERIES)],
        axis=1,
    )
    picks = rng.integers(0, ds.num_edges, N_QUERIES // 2)
    qs[: N_QUERIES // 2, 0] = ds.sources[picks]
    qs[: N_QUERIES // 2, 1] = ds.destinations[picks]
    return unodes, qs


def _sharded(ds, shards, partitioner):
    return open_store(
        "sharded", ds.sources, ds.destinations, ds.num_nodes,
        shards=shards, partitioner=partitioner,
    )


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _serve_workload(store, unodes, qs):
    ex = SerialExecutor()
    flat_offs = store.neighbors_batch(unodes)
    hits = batch_edge_existence(store, qs, ex)
    return flat_offs, hits


@pytest.mark.parametrize("partitioner", ["range", "hash"])
def test_scatter_gather_bitexact_on_workload(mono, medium_standin, workload,
                                             partitioner):
    unodes, qs = workload
    sharded = _sharded(medium_standin, SHARDS, partitioner)
    (want_fo, want_hits) = _serve_workload(mono, unodes, qs)
    (got_fo, got_hits) = _serve_workload(sharded, unodes, qs)
    assert np.array_equal(got_fo[0], want_fo[0])
    assert np.array_equal(got_fo[1], want_fo[1])
    assert np.array_equal(got_hits, want_hits)


@pytest.mark.parametrize("p", [1, 4, 16])
def test_simulated_cost_parity(mono, medium_standin, workload, p):
    """The sharded store charges the simulated machine exactly what the
    monolithic packed store charges — same decode width, same rows."""
    unodes, qs = workload
    sharded = _sharded(medium_standin, SHARDS, "range")
    m1, m2 = SimulatedMachine(p), SimulatedMachine(p)
    batch_neighbors(mono, unodes[:2000], m1)
    batch_neighbors(sharded, unodes[:2000], m2)
    assert m1.elapsed_ns() == m2.elapsed_ns()
    m1, m2 = SimulatedMachine(p), SimulatedMachine(p)
    batch_edge_existence(mono, qs[:2000], m1)
    batch_edge_existence(sharded, qs[:2000], m2)
    assert m1.elapsed_ns() == m2.elapsed_ns()


def test_zipf_parity_gate(mono, medium_standin, workload):
    """The headline gate: sharded scatter-gather at parity-or-better
    qps vs monolithic on the combined 10k-query Zipf workload."""
    unodes, qs = workload
    total = 2 * N_QUERIES

    t_mono, _ = _best_of(lambda: _serve_workload(mono, unodes, qs))
    rows = []
    results = {}
    gate_ratio = None
    for partitioner in ("range", "hash"):
        sharded = _sharded(medium_standin, SHARDS, partitioner)
        t_shard, _ = _best_of(lambda: _serve_workload(sharded, unodes, qs))
        ratio = t_mono / t_shard
        results[partitioner] = {
            "mono_s": t_mono,
            "sharded_s": t_shard,
            "qps_ratio": ratio,
            "sharded_qps": total / t_shard,
        }
        rows.append(
            [partitioner, f"{t_mono * 1e3:.1f}", f"{t_shard * 1e3:.1f}",
             f"{ratio:.2f}x", f"{total / t_shard:,.0f}"]
        )
        if partitioner == "range":
            gate_ratio = ratio

    baseline = {
        "store": f"ShardedStore x{SHARDS} over BitPackedCSR "
                 "(pokec stand-in, 1/64 scale)",
        "workload": f"{N_QUERIES} zipf({SKEW}) neighbors + "
                    f"{N_QUERIES} edge probes",
        "graph": {"nodes": int(mono.num_nodes), "edges": int(mono.num_edges)},
        "partitioners": results,
    }
    # refresh the committed baseline only on request — a plain test run
    # must not dirty the working tree with this machine's numbers
    if os.environ.get("BENCH_WRITE_BASELINE") or not BASELINE_PATH.exists():
        baseline_record(
            BASELINE_PATH, baseline, name="shard",
            gate=f"sharded qps >= {PARITY_FLOOR}x monolithic",
            measured=gate_ratio,
        )

    report(
        f"Sharded scatter-gather vs monolithic ({N_QUERIES}-query Zipf workload)",
        render_table(
            ["partitioner", "mono ms", "sharded ms", "qps ratio", "sharded q/s"],
            rows,
            title=f"{SHARDS} shards over packed CSR (gate: >= {PARITY_FLOOR}x)",
        ),
    )
    assert gate_ratio >= PARITY_FLOOR, (
        f"sharded qps fell to {gate_ratio:.2f}x of monolithic "
        f"(floor {PARITY_FLOOR}x)"
    )


def test_shard_sweep_report(mono, medium_standin, workload):
    """Shard-count sweep for EXPERIMENTS.md: wall-clock of the Zipf
    workload and memory overhead as fan-out grows."""
    unodes, qs = workload
    t_mono, _ = _best_of(lambda: _serve_workload(mono, unodes, qs))
    mono_mem = mono.memory_bytes()
    rows = [["monolithic", "-", f"{t_mono * 1e3:.1f}", "1.00x", "1.00x"]]
    for partitioner in ("range", "hash"):
        for shards in (2, 4, 8, 16):
            store = _sharded(medium_standin, shards, partitioner)
            t, _ = _best_of(lambda: _serve_workload(store, unodes, qs))
            rows.append(
                [partitioner, str(shards), f"{t * 1e3:.1f}",
                 f"{t_mono / t:.2f}x",
                 f"{store.memory_bytes() / mono_mem:.2f}x"]
            )
    report(
        "Shard-count sweep (Zipf workload wall-clock, memory vs monolithic)",
        render_table(
            ["partitioner", "shards", "workload ms", "qps ratio", "memory"],
            rows,
        ),
    )
