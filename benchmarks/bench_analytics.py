"""Analytics jobs: simulated speed-up curves and serve coexistence.

Two gates on the :mod:`repro.algorithms` job layer:

* **Scaling** — every registered algorithm, run on the charged
  :class:`SimulatedMachine`, must speed up by at least
  ``SPEEDUP_FLOOR`` going from 1 to 4 processors (bfs/pagerank on the
  pokec stand-in, triangles on a bounded-degree ER graph — the exact
  wedge scan is quadratic in degree, so power-law hubs are out of
  reach for an *exact* count at bench scale).
* **Coexistence** — a bfs job time-sliced through
  :meth:`GraphQueryServer.pump` must finish bit-exactly while point
  queries keep flowing, and the client-observed wall p99 of a
  submit+pump round-trip may degrade by at most ``P99_DEGRADE_CAP``x
  versus a job-free server (each pump grants the job one
  ``job_slice_steps`` slice, so the bound *is* the slice size knob).

The baseline is recorded in ``BENCH_analytics.json`` under
``BENCH_WRITE_BASELINE=1``.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import open_store
from repro.algorithms import make_stepper
from repro.analysis.speedup import SpeedupCurve
from repro.analysis.tables import render_series, render_table
from repro.csr.traversal import bfs_levels
from repro.datasets import er_edges
from repro.parallel import SimulatedMachine
from repro.serve import (
    DONE,
    AnalyticsRequest,
    NeighborsRequest,
    ServerConfig,
    open_server,
)

from conftest import baseline_record, report

PROCESSORS = (1, 2, 4)
SPEEDUP_FLOOR = 1.5  # T_1 / T_4, per algorithm
P99_DEGRADE_CAP = 50.0  # client-observed p99, job vs no-job server
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_analytics.json"


@pytest.fixture(scope="module")
def pokec_edges(medium_standin):
    ds = medium_standin
    pairs = np.unique(np.stack(
        [ds.sources.astype(np.int64), ds.destinations.astype(np.int64)], 1
    ), axis=0)
    return pairs[:, 0], pairs[:, 1], ds.num_nodes


@pytest.fixture(scope="module")
def pokec_packed(pokec_edges):
    src, dst, n = pokec_edges
    return open_store("packed", src, dst, n, sort=True)


@pytest.fixture(scope="module")
def er_packed():
    src, dst, n = er_edges(4_000, 40_000, rng=np.random.default_rng(17))
    return open_store("packed", src, dst, n, sort=True)


def _curve(name: str, store, **params) -> SpeedupCurve:
    times = {}
    for p in PROCESSORS:
        machine = SimulatedMachine(p)
        make_stepper(name, store, machine, **params).run()
        times[p] = machine.elapsed_ms()
    return SpeedupCurve(name, times)


def _merge_baseline(section: str, payload: dict, *, gate: str,
                    measured: float) -> None:
    if os.environ.get("BENCH_WRITE_BASELINE") or not BASELINE_PATH.exists():
        baseline_record(
            BASELINE_PATH, {section: payload}, name="analytics",
            gate=gate, measured=measured,
        )


def test_analytics_speedup_curves(benchmark, pokec_packed, er_packed):
    def sweep():
        hub = int(np.argmax(
            np.diff(pokec_packed.to_csr().indptr)
        ))
        return {
            "bfs": _curve("bfs", pokec_packed, source=hub),
            "pagerank": _curve("pagerank", pokec_packed, max_iter=5),
            "triangles": _curve("triangles", er_packed),
        }

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ratios = {name: c.ratios()[4] for name, c in curves.items()}
    for name, ratio in ratios.items():
        assert ratio >= SPEEDUP_FLOOR, (
            f"{name}: only {ratio:.2f}x from 1 to 4 simulated processors"
        )
    report(
        "Analytics jobs: simulated ms vs processors (floor "
        f"{SPEEDUP_FLOOR}x at p=4)",
        render_series(
            "algorithm",
            {name: dict(sorted(c.times_ms.items()))
             for name, c in curves.items()},
        ),
    )
    _merge_baseline("speedup", {
        "processors": list(PROCESSORS),
        "floor": SPEEDUP_FLOOR,
        "ratio_at_4": {k: round(v, 3) for k, v in ratios.items()},
        "times_ms": {
            name: {str(p): round(t, 4) for p, t in sorted(c.times_ms.items())}
            for name, c in curves.items()
        },
    }, gate=f"every algorithm >= {SPEEDUP_FLOOR}x at p=4",
       measured=min(ratios.values()))


def _client_p99_ms(server, nodes, job=None) -> float:
    """Wall p99 (ms) of a synchronous submit+pump round-trip per node.

    With *job* active, each pump also grants the job one slice — the
    client-observed latency is exactly what a caller polling the
    server's loop sees while analytics share it.
    """
    lat = []
    for u in nodes:
        t0 = time.perf_counter()
        slot = server.submit(NeighborsRequest(node=int(u)))
        server.pump()
        assert slot.status == DONE
        lat.append(time.perf_counter() - t0)
        if job is not None and job.ready:
            break
    return float(np.percentile(np.array(lat) * 1e3, 99))


def test_job_coexists_with_serving(pokec_edges, pokec_packed):
    src, dst, n = pokec_edges
    hub = int(np.argmax(np.diff(pokec_packed.to_csr().indptr)))
    ref = bfs_levels(open_store("csr-serial", src, dst, n), hub)
    nodes = np.random.default_rng(23).integers(0, n, 6_000)

    def make_server():
        return open_server(ServerConfig(
            store=pokec_packed, max_batch_size=1, job_slice_steps=1,
        ))

    alone = _client_p99_ms(make_server(), nodes[:1_500])

    server = make_server()
    job = server.submit_job(AnalyticsRequest(
        algorithm="bfs", params={"source": hub, "slice_nodes": 256},
    ))
    mixed = _client_p99_ms(server, nodes, job=job)
    server.drain()  # finish the job if point traffic outlasted it

    assert job.status == DONE
    assert np.array_equal(job.result().value, ref)  # bit-exact under slicing
    factor = mixed / max(alone, 1e-9)
    assert factor <= P99_DEGRADE_CAP, (
        f"p99 degraded {factor:.1f}x with a job sharing the pump "
        f"(cap {P99_DEGRADE_CAP}x)"
    )
    report(
        "Analytics + serving coexistence (wall clock)",
        render_table(
            ["mode", "client p99 (ms)"],
            [["serve only", round(alone, 4)],
             ["serve + bfs job", round(mixed, 4)],
             ["degradation", f"{factor:.2f}x (cap {P99_DEGRADE_CAP:.0f}x)"]],
        ),
    )
    _merge_baseline("coexistence", {
        "p99_ms_alone": round(alone, 4),
        "p99_ms_with_job": round(mixed, 4),
        "degradation_factor": round(factor, 3),
        "cap": P99_DEGRADE_CAP,
    }, gate=f"client p99 degrades <= {P99_DEGRADE_CAP:.0f}x under a job",
       measured=factor)
