"""Figure 2 mechanism bench — the chunked parallel prefix sum.

Wall-clock of the real kernels (numpy cumsum vs the chunked scan) plus
the simulated scaling curve of Algorithm 1 in isolation, which is
near-linear because the scan's only sequential part is the O(p) carry
chain.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_series
from repro.parallel import SerialExecutor, SimulatedMachine
from repro.parallel.scan import prefix_sum_parallel, prefix_sum_serial

from conftest import report

N = 2_000_000


@pytest.fixture(scope="module")
def array():
    return np.random.default_rng(7).integers(0, 1000, N)


def test_numpy_cumsum_baseline(benchmark, array):
    out = benchmark(prefix_sum_serial, array)
    assert out[-1] == array.sum()


def test_chunked_scan_serial_executor(benchmark, array):
    ex = SerialExecutor()
    out = benchmark(prefix_sum_parallel, array, ex)
    assert out[-1] == array.sum()


@pytest.mark.parametrize("p", [4, 64])
def test_chunked_scan_simulated(benchmark, array, p):
    def run():
        return prefix_sum_parallel(array, SimulatedMachine(p))

    out = benchmark.pedantic(run, rounds=2, iterations=1)
    assert out[-1] == array.sum()


def test_scan_scaling_report(benchmark, array):
    def sweep():
        times = {}
        for p in (1, 2, 4, 8, 16, 32, 64):
            machine = SimulatedMachine(p)
            prefix_sum_parallel(array, machine)
            times[p] = machine.elapsed_ms()
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # the scan alone scales almost linearly (tiny serial fraction)
    assert times[64] < times[1] / 20
    report(
        "Figure 2 mechanism: chunked prefix-sum scaling (simulated ms)",
        render_series("prefix sum over 2M elements", {"scan": times}),
    )
