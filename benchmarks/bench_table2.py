"""Table II — compression results per graph and processor count.

Two measurements per graph:

* a real wall-clock benchmark of the full Section III pipeline (the
  honest single-core number for this hardware), via pytest-benchmark;
* the simulated processor sweep that regenerates Table II's time and
  speed-up columns (printed in the terminal summary, alongside the
  projection of the size columns to paper scale).
"""

import pytest

from repro.analysis.compare import check_table2, render_checks
from repro.analysis.experiments import run_table2
from repro import open_store

from conftest import report


@pytest.mark.parametrize("name", ["livejournal", "pokec", "orkut", "webnotredame"])
def test_build_wallclock(benchmark, standins, name):
    """Wall-clock of edge list -> bit-packed CSR (p=1, real time)."""
    ds = standins[name]
    result = benchmark.pedantic(
        open_store,
        args=("packed", ds.sources, ds.destinations, ds.num_nodes),
        rounds=3,
        iterations=1,
    )
    assert result.num_edges == ds.num_edges


def test_table2_simulated_sweep(benchmark, bench_scale):
    """Regenerate the full Table II grid on the simulated machine."""

    def run():
        return run_table2(scale=bench_scale)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # shape assertions mirroring the paper's claims
    for name in ("livejournal", "pokec", "orkut", "webnotredame"):
        times = result.times(name)
        assert times[64] < times[16] < times[4] < times[1], name
        t1 = times[1]
        speedup64 = (1 - times[64] / t1) * 100
        assert 60.0 < speedup64 < 99.0, (name, speedup64)
    for row in result.rows:
        assert row.csr_bytes < row.edgelist_bytes
    checks = check_table2(result)
    assert all(c.passed for c in checks), [c.claim for c in checks if not c.passed]
    report("Table II (reproduced)", result.render())
    report("Table II size columns at paper scale", result.render_projection())
    report("Table II shape verdicts", render_checks("claims vs measured", checks))
