"""Related-work ablation — static CSR rebuilds vs dynamic PCSR [9], [13].

Section II: "CSR has the disadvantage of being a static storage format
that can require shifting the entire edge array when adding an edge",
which motivated PCSR.  The paper chose the static route and
parallelised the rebuild; this bench quantifies the alternative it
declined: per-update cost of PCSR vs full rebuild per batch of the
static pipeline, and the query-side price PCSR pays.
"""

import time

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro import open_store
from repro.csr.builder import ensure_sorted
from repro.pcsr import PCSRGraph

from conftest import report

N_NODES = 4_000
BASE_EDGES = 40_000
BATCH = 500
N_BATCHES = 8


@pytest.fixture(scope="module")
def base_edges():
    rng = np.random.default_rng(41)
    src, dst = ensure_sorted(
        rng.integers(0, N_NODES, BASE_EDGES), rng.integers(0, N_NODES, BASE_EDGES)
    )
    keys = (src.astype(np.uint64) << np.uint64(32)) | dst.astype(np.uint64)
    _, first = np.unique(keys, return_index=True)
    first.sort()
    return src[first], dst[first]


@pytest.fixture(scope="module")
def update_batches(base_edges):
    rng = np.random.default_rng(43)
    batches = []
    for _ in range(N_BATCHES):
        au = rng.integers(0, N_NODES, BATCH)
        av = rng.integers(0, N_NODES, BATCH)
        picks = rng.integers(0, len(base_edges[0]), BATCH // 2)
        batches.append(((au, av), (base_edges[0][picks], base_edges[1][picks])))
    return batches


def test_pcsr_build_wallclock(benchmark, base_edges):
    src, dst = base_edges
    g = benchmark.pedantic(
        PCSRGraph.from_edges, args=(src, dst, N_NODES), rounds=1, iterations=1
    )
    assert g.num_edges == len(src)


def test_pcsr_update_batch_wallclock(benchmark, base_edges, update_batches):
    src, dst = base_edges
    g = PCSRGraph.from_edges(src, dst, N_NODES)
    batch_iter = iter(update_batches * 50)

    def apply_one():
        adds, dels = next(batch_iter)
        return g.apply_batch(additions=adds, deletions=dels)

    benchmark.pedantic(apply_one, rounds=min(6, N_BATCHES), iterations=1)
    g.check_invariants()


def test_static_rebuild_batch_wallclock(benchmark, base_edges, update_batches):
    """The static alternative: re-sort + rebuild the whole CSR per batch."""
    src, dst = base_edges

    def rebuild():
        adds, dels = update_batches[0]
        del_keys = (dels[0].astype(np.uint64) << np.uint64(32)) | dels[1].astype(np.uint64)
        keys = (src.astype(np.uint64) << np.uint64(32)) | dst.astype(np.uint64)
        keep = ~np.isin(keys, del_keys)
        new_src = np.concatenate([src[keep], adds[0]])
        new_dst = np.concatenate([dst[keep], adds[1]])
        new_src, new_dst = ensure_sorted(new_src, new_dst)
        return open_store("csr-serial", new_src, new_dst, N_NODES)

    g = benchmark.pedantic(rebuild, rounds=3, iterations=1)
    assert g.num_edges > 0


def test_dynamic_tradeoff_report(benchmark, base_edges, update_batches):
    def measure():
        src, dst = base_edges
        # dynamic path
        pcsr = PCSRGraph.from_edges(src, dst, N_NODES)
        start = time.perf_counter()
        for adds, dels in update_batches:
            pcsr.apply_batch(additions=adds, deletions=dels)
        dyn_per_batch_ms = (time.perf_counter() - start) / N_BATCHES * 1e3

        # static path: full rebuild each batch
        cur_src, cur_dst = src, dst
        start = time.perf_counter()
        for adds, dels in update_batches:
            del_keys = (dels[0].astype(np.uint64) << np.uint64(32)) | dels[1].astype(np.uint64)
            keys = (cur_src.astype(np.uint64) << np.uint64(32)) | cur_dst.astype(np.uint64)
            keep = ~np.isin(keys, del_keys)
            cur_src = np.concatenate([cur_src[keep], adds[0]])
            cur_dst = np.concatenate([cur_dst[keep], adds[1]])
            cur_src, cur_dst = ensure_sorted(cur_src, cur_dst)
            static = open_store("csr-serial", cur_src, cur_dst, N_NODES)
        static_per_batch_ms = (time.perf_counter() - start) / N_BATCHES * 1e3

        # query price: neighbor scan latency
        rng = np.random.default_rng(47)
        nodes = rng.integers(0, N_NODES, 2000)
        start = time.perf_counter()
        for u in nodes.tolist():
            pcsr.neighbors(u)
        pcsr_q_us = (time.perf_counter() - start) / 2000 * 1e6
        start = time.perf_counter()
        for u in nodes.tolist():
            static.neighbors(u)
        csr_q_us = (time.perf_counter() - start) / 2000 * 1e6
        return [
            ["static CSR (rebuild)", static_per_batch_ms, csr_q_us,
             static.memory_bytes()],
            ["PCSR (in-place)", dyn_per_batch_ms, pcsr_q_us,
             pcsr.memory_bytes()],
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        f"Dynamic-updates ablation ({BATCH} adds + {BATCH // 2} deletes per batch, "
        f"{BASE_EDGES} base edges)",
        render_table(["store", "ms/update-batch", "us/neighbor-query", "bytes"], rows),
    )
