"""Section V ablation — parallel query throughput.

Batched neighbourhood queries (Algorithm 6), batched edge existence
(Algorithm 7, scan vs the binary-search extension), and single-edge
row-splitting (Algorithm 8), on the uncompressed and bit-packed CSR,
with the simulated p-sweep showing the claimed query parallelism.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_series
from repro.csr import BitPackedCSR, build_csr_serial
from repro.parallel import SerialExecutor, SimulatedMachine
from repro.query import QueryEngine, batch_edge_existence, batch_neighbors

from conftest import report

N_QUERIES = 2_000


@pytest.fixture(scope="module")
def stores(medium_standin):
    ds = medium_standin
    csr = build_csr_serial(ds.sources, ds.destinations, ds.num_nodes)
    return {"csr": csr, "packed": BitPackedCSR.from_csr(csr)}


@pytest.fixture(scope="module")
def node_queries(medium_standin):
    rng = np.random.default_rng(11)
    return rng.integers(0, medium_standin.num_nodes, N_QUERIES)


@pytest.fixture(scope="module")
def edge_queries(medium_standin, stores):
    rng = np.random.default_rng(13)
    n = medium_standin.num_nodes
    qs = np.stack([rng.integers(0, n, N_QUERIES), rng.integers(0, n, N_QUERIES)], axis=1)
    src, dst = stores["csr"].edges()
    picks = rng.integers(0, len(src), N_QUERIES // 2)
    qs[: N_QUERIES // 2, 0] = src[picks]
    qs[: N_QUERIES // 2, 1] = dst[picks]
    return qs


@pytest.mark.parametrize("store_name", ["csr", "packed"])
def test_batch_neighbors_wallclock(benchmark, stores, node_queries, store_name):
    store = stores[store_name]
    ex = SerialExecutor()
    rows = benchmark(batch_neighbors, store, node_queries, ex)
    assert len(rows) == N_QUERIES


@pytest.mark.parametrize("method", ["scan", "bisect"])
def test_batch_edges_wallclock(benchmark, stores, edge_queries, method):
    out = benchmark(
        batch_edge_existence, stores["csr"], edge_queries, SerialExecutor(), method=method
    )
    assert out.sum() >= N_QUERIES // 2  # planted edges found


def test_single_edge_row_split(benchmark, stores):
    csr = stores["csr"]
    u = int(np.argmax(csr.degrees()))
    v = int(csr.neighbors(u)[-1])
    engine = QueryEngine(csr, SimulatedMachine(8))

    def run():
        return engine.has_edge(u, v, method="scan")

    assert benchmark(run)


def test_query_throughput_scaling_report(benchmark, stores, node_queries, edge_queries):
    """Simulated p-sweep of both batch query algorithms on the packed CSR."""

    def sweep():
        out = {"neighbors": {}, "edges-scan": {}, "edges-bisect": {}}
        store = stores["packed"]
        for p in (1, 4, 16, 64):
            m = SimulatedMachine(p)
            batch_neighbors(store, node_queries, m)
            out["neighbors"][p] = m.elapsed_ms()
            m = SimulatedMachine(p)
            batch_edge_existence(store, edge_queries, m, method="scan")
            out["edges-scan"][p] = m.elapsed_ms()
            m = SimulatedMachine(p)
            batch_edge_existence(store, edge_queries, m, method="bisect")
            out["edges-bisect"][p] = m.elapsed_ms()
        return out

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name, curve in series.items():
        assert curve[64] < curve[1] / 8, name  # queries parallelise well
    assert series["edges-bisect"][1] < series["edges-scan"][1]
    report(
        "Section V ablation: batched query time vs processors (simulated ms, 2k queries)",
        render_series("query batches on bit-packed CSR", series),
    )
