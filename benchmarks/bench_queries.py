"""Section V ablation — parallel query throughput.

Batched neighbourhood queries (Algorithm 6), batched edge existence
(Algorithm 7, scan vs the binary-search extension), and single-edge
row-splitting (Algorithm 8), on the uncompressed and bit-packed CSR,
with the simulated p-sweep showing the claimed query parallelism.

The scalar-vs-batch comparison times the per-row Python path (one
``neighbors()``/membership call per query — the pre-vectorisation
implementation) against the gather-decode batch kernels at a 10k+
batch, and records the throughput baseline in ``BENCH_queries.json``
so future PRs can track the query-path trajectory.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.tables import render_series, render_table
from repro import open_store
from repro.parallel import SerialExecutor, SimulatedMachine
from repro.query import (
    QueryEngine,
    RowCache,
    batch_edge_existence,
    batch_neighbors,
)
from repro.query.edges import _membership

from conftest import baseline_record, report

N_QUERIES = 2_000
BATCH_N = 10_000  # scalar-vs-batch comparison size (acceptance: >= 10k)
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_queries.json"

# The >= 5x gate reflects an unloaded machine; shared CI runners are
# noisy enough to flake it, so CI only asserts the batch path clearly
# beats the per-row Python loop (a regression to the scalar path shows
# up as ~1x).  Local runs keep the full acceptance bar.
SPEEDUP_FLOOR = 2.0 if os.environ.get("CI") else 5.0


@pytest.fixture(scope="module")
def stores(medium_standin):
    ds = medium_standin
    args = (ds.sources, ds.destinations, ds.num_nodes)
    return {"csr": open_store("csr-serial", *args), "packed": open_store("packed", *args)}


@pytest.fixture(scope="module")
def node_queries(medium_standin):
    rng = np.random.default_rng(11)
    return rng.integers(0, medium_standin.num_nodes, N_QUERIES)


@pytest.fixture(scope="module")
def edge_queries(medium_standin, stores):
    rng = np.random.default_rng(13)
    n = medium_standin.num_nodes
    qs = np.stack([rng.integers(0, n, N_QUERIES), rng.integers(0, n, N_QUERIES)], axis=1)
    src, dst = stores["csr"].edges()
    picks = rng.integers(0, len(src), N_QUERIES // 2)
    qs[: N_QUERIES // 2, 0] = src[picks]
    qs[: N_QUERIES // 2, 1] = dst[picks]
    return qs


@pytest.mark.parametrize("store_name", ["csr", "packed"])
def test_batch_neighbors_wallclock(benchmark, stores, node_queries, store_name):
    store = stores[store_name]
    ex = SerialExecutor()
    rows = benchmark(batch_neighbors, store, node_queries, ex)
    assert len(rows) == N_QUERIES


@pytest.mark.parametrize("method", ["scan", "bisect"])
def test_batch_edges_wallclock(benchmark, stores, edge_queries, method):
    out = benchmark(
        batch_edge_existence, stores["csr"], edge_queries, SerialExecutor(), method=method
    )
    assert out.sum() >= N_QUERIES // 2  # planted edges found


def test_single_edge_row_split(benchmark, stores):
    csr = stores["csr"]
    u = int(np.argmax(csr.degrees()))
    v = int(csr.neighbors(u)[-1])
    engine = QueryEngine(csr, SimulatedMachine(8))

    def run():
        return engine.has_edge(u, v, method="scan")

    assert benchmark(run)


def _best_of(fn, repeats=3):
    """Best wall-clock seconds over *repeats* runs (returns last result too)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _scalar_neighbors(store, unodes):
    """The pre-vectorisation path: one Python-level row call per query."""
    return [store.neighbors(int(u)) for u in unodes]


def _scalar_edges(store, qs, method):
    """The pre-vectorisation path: one row decode + membership per query."""
    out = np.zeros(qs.shape[0], dtype=bool)
    for i in range(qs.shape[0]):
        row = store.neighbors(int(qs[i, 0]))
        out[i], _ = _membership(row, int(qs[i, 1]), method)
    return out


def test_scalar_vs_batch_throughput(stores, medium_standin):
    """Batch kernels must beat the per-query scalar path >= 5x at 10k
    queries on the packed CSR (relaxed to >= 2x on noisy CI runners).
    The measured baseline is written to BENCH_queries.json when
    BENCH_WRITE_BASELINE=1 (or when no baseline exists yet)."""
    store = stores["packed"]
    rng = np.random.default_rng(17)
    n = medium_standin.num_nodes
    unodes = rng.integers(0, n, BATCH_N)
    qs = np.stack([rng.integers(0, n, BATCH_N), rng.integers(0, n, BATCH_N)], axis=1)
    src, dst = stores["csr"].edges()
    picks = rng.integers(0, len(src), BATCH_N // 2)
    qs[: BATCH_N // 2, 0] = src[picks]
    qs[: BATCH_N // 2, 1] = dst[picks]

    results = {}
    t_scalar, want_rows = _best_of(lambda: _scalar_neighbors(store, unodes))
    t_batch, got_rows = _best_of(
        lambda: batch_neighbors(store, unodes, SerialExecutor())
    )
    for want, got in zip(want_rows, got_rows):
        assert np.array_equal(want, got)
    results["neighbors"] = {
        "scalar_s": t_scalar,
        "batch_s": t_batch,
        "speedup": t_scalar / t_batch,
        "batch_queries_per_s": BATCH_N / t_batch,
    }
    for method in ("scan", "bisect"):
        t_scalar, want = _best_of(lambda: _scalar_edges(store, qs, method))
        t_batch, got = _best_of(
            lambda: batch_edge_existence(store, qs, SerialExecutor(), method=method)
        )
        assert np.array_equal(want, got)
        results[f"edges-{method}"] = {
            "scalar_s": t_scalar,
            "batch_s": t_batch,
            "speedup": t_scalar / t_batch,
            "batch_queries_per_s": BATCH_N / t_batch,
        }

    baseline = {
        "store": "BitPackedCSR (pokec stand-in, 1/64 scale)",
        "batch_size": BATCH_N,
        "graph": {"nodes": int(n), "edges": int(store.num_edges)},
        "kernels": results,
    }
    # refresh the committed baseline only on request — a plain test run
    # must not dirty the working tree with this machine's numbers
    if os.environ.get("BENCH_WRITE_BASELINE") or not BASELINE_PATH.exists():
        baseline_record(
            BASELINE_PATH, baseline, name="queries",
            gate=f"every kernel >= {SPEEDUP_FLOOR}x its scalar path",
            measured=min(r["speedup"] for r in results.values()),
        )

    rows = [
        [name, f"{r['scalar_s'] * 1e3:.1f}", f"{r['batch_s'] * 1e3:.1f}",
         f"{r['speedup']:.1f}x", f"{r['batch_queries_per_s']:,.0f}"]
        for name, r in results.items()
    ]
    report(
        f"Scalar vs batch query kernels (packed CSR, {BATCH_N} queries, wall-clock)",
        render_table(
            ["kernel", "scalar ms", "batch ms", "speedup", "batch q/s"],
            rows,
            title="vectorised decode vs per-row Python path",
        ),
    )
    for name, r in results.items():
        assert r["speedup"] >= SPEEDUP_FLOOR, f"{name}: only {r['speedup']:.1f}x"


def test_rowcache_hit_rate_on_skewed_traffic(stores, medium_standin):
    """An LRU row cache over the packed store should absorb most of a
    Zipf-skewed workload and speed repeated batches up further."""
    store = stores["packed"]
    n = medium_standin.num_nodes
    rng = np.random.default_rng(23)
    skewed = np.minimum(rng.zipf(1.3, BATCH_N) - 1, n - 1).astype(np.int64)
    cache = RowCache(store, capacity=200_000)
    t_cold, _ = _best_of(lambda: batch_neighbors(cache, skewed, SerialExecutor()), 1)
    t_warm, _ = _best_of(lambda: batch_neighbors(cache, skewed, SerialExecutor()), 3)
    stats = cache.stats()
    assert stats.hit_rate > 0.5
    report(
        "Row cache on Zipf(1.3) traffic (packed CSR)",
        render_table(
            ["metric", "value"],
            [
                ["cold batch ms", f"{t_cold * 1e3:.1f}"],
                ["warm batch ms", f"{t_warm * 1e3:.1f}"],
                ["hit rate", f"{stats.hit_rate:.1%}"],
                ["resident elements", stats.elements],
            ],
            title=repr(cache)[:100],
        ),
    )


def test_query_throughput_scaling_report(benchmark, stores, node_queries, edge_queries):
    """Simulated p-sweep of both batch query algorithms on the packed CSR."""

    def sweep():
        out = {"neighbors": {}, "edges-scan": {}, "edges-bisect": {}}
        store = stores["packed"]
        for p in (1, 4, 16, 64):
            m = SimulatedMachine(p)
            batch_neighbors(store, node_queries, m)
            out["neighbors"][p] = m.elapsed_ms()
            m = SimulatedMachine(p)
            batch_edge_existence(store, edge_queries, m, method="scan")
            out["edges-scan"][p] = m.elapsed_ms()
            m = SimulatedMachine(p)
            batch_edge_existence(store, edge_queries, m, method="bisect")
            out["edges-bisect"][p] = m.elapsed_ms()
        return out

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name, curve in series.items():
        assert curve[64] < curve[1] / 8, name  # queries parallelise well
    assert series["edges-bisect"][1] < series["edges-scan"][1]
    report(
        "Section V ablation: batched query time vs processors (simulated ms, 2k queries)",
        render_series("query batches on bit-packed CSR", series),
    )
