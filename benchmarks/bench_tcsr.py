"""Figures 4-5 mechanism bench — time-evolving differential CSR.

Construction time of Algorithm 5 vs processors (simulated), plus the
storage comparison that motivates Section IV: differential TCSR vs a
full CSR per frame.
"""

import pytest

from repro.analysis.tables import render_series, render_table
from repro.parallel import SerialExecutor, SimulatedMachine
from repro.temporal import build_tcsr, build_tcsr_serial, full_frame_csrs
from repro.utils import human_bytes

from conftest import report


def test_tcsr_build_wallclock(benchmark, event_stream):
    tcsr = benchmark.pedantic(
        build_tcsr, args=(event_stream, SerialExecutor()), rounds=3, iterations=1
    )
    assert tcsr.num_frames == event_stream.num_frames


def test_tcsr_serial_reference_wallclock(benchmark, event_stream):
    tcsr = benchmark.pedantic(
        build_tcsr_serial, args=(event_stream,), rounds=3, iterations=1
    )
    assert tcsr.num_frames == event_stream.num_frames


def test_tcsr_scaling_and_storage_report(benchmark, event_stream):
    def sweep():
        times = {}
        for p in (1, 4, 16, 64):
            machine = SimulatedMachine(p)
            build_tcsr(event_stream, machine)
            times[p] = machine.elapsed_ms()
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert times[64] < times[1]
    report(
        "Algorithm 5: TCSR construction time vs processors (simulated ms)",
        render_series("TCSR build", {"tcsr": times}),
    )

    tcsr = build_tcsr(event_stream)
    full = full_frame_csrs(event_stream)
    full_bytes = sum(c.memory_bytes() for c in full)
    ratio = full_bytes / tcsr.memory_bytes()
    assert ratio > 2.0  # differential storage must win clearly
    report(
        "Section IV storage: differential TCSR vs full per-frame CSRs",
        render_table(
            ["store", "bytes", "vs TCSR"],
            [
                ["differential TCSR", human_bytes(tcsr.memory_bytes()), "1.0x"],
                ["full CSR per frame", human_bytes(full_bytes), f"{ratio:.1f}x"],
            ],
        ),
    )
