"""Related-work ablation — TCSR vs the log-structured baselines [21].

The paper's criticism of log formats is that "the log must be scanned
sequentially ... slow for large time-evolving graphs".  This bench
measures point-query latency and storage for TCSR, EveLog, and EdgeLog
on the same churn stream.
"""

import time

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.temporal import CASIndex, CETIndex, CKDTree, EdgeLog, EveLog, TGCSA, build_tcsr
from repro.utils import human_bytes

from conftest import report

N_QUERIES = 300


@pytest.fixture(scope="module")
def temporal_stores(event_stream):
    return {
        "tcsr": build_tcsr(event_stream),
        "evelog": EveLog(event_stream),
        "edgelog": EdgeLog(event_stream),
        "cas": CASIndex(event_stream),
        "cet": CETIndex(event_stream),
        "tgcsa": TGCSA.from_events(event_stream),
        "ckdtree": CKDTree.from_events(event_stream),
    }


@pytest.fixture(scope="module")
def point_queries(event_stream):
    rng = np.random.default_rng(17)
    return [
        (
            int(rng.integers(0, event_stream.num_nodes)),
            int(rng.integers(0, event_stream.num_nodes)),
            int(rng.integers(0, event_stream.num_frames)),
        )
        for _ in range(N_QUERIES)
    ]


@pytest.mark.parametrize("store_name", ["tcsr", "evelog", "edgelog", "cas", "cet", "tgcsa", "ckdtree"])
def test_edge_active_wallclock(benchmark, temporal_stores, point_queries, store_name):
    store = temporal_stores[store_name]

    def run():
        return [store.edge_active(u, v, f) for u, v, f in point_queries]

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(out) == N_QUERIES


def test_temporal_store_comparison_report(benchmark, temporal_stores, point_queries):
    def measure():
        rows = []
        answers = {}
        for name, store in temporal_stores.items():
            start = time.perf_counter()
            answers[name] = [store.edge_active(u, v, f) for u, v, f in point_queries]
            elapsed_us = (time.perf_counter() - start) / N_QUERIES * 1e6
            rows.append([name, human_bytes(store.memory_bytes()), elapsed_us])
        return rows, answers

    rows, answers = benchmark.pedantic(measure, rounds=1, iterations=1)
    # all stores must agree before any speed claims count
    assert (
        answers["tcsr"] == answers["evelog"] == answers["edgelog"]
        == answers["cas"] == answers["cet"] == answers["tgcsa"]
        == answers["ckdtree"]
    )
    report(
        "Temporal baselines: storage and point-query latency",
        render_table(["store", "bytes", "us/query"], rows),
    )
