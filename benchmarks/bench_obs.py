"""Observability overhead — tracing must not tax the serve path.

The gate: serving the 10k-request Zipf workload with the tracer on
(``sample_every=16``, the DESIGN.md §13 recommended production
setting) must keep >= 0.9x the tracer-off throughput (relaxed to
0.75x on noisy shared CI runners).  Both modes replay on a
ManualClock so batch boundaries are identical and the ratio measures
pure tracer cost; repeats are interleaved so clock drift hits every
mode equally.  Also records the full-sampling cost for the overhead
table, and sanity-checks that the traced run actually produced spans
with cost attribution — a "free" tracer that records nothing would
pass any overhead gate.

Baseline lands in ``BENCH_obs.json`` under ``BENCH_WRITE_BASELINE=1``
(or when the file is missing).
"""

import os
import time
from pathlib import Path

import pytest

from repro import open_store
from repro.analysis.tables import render_table
from repro.obs import ObsConfig, rollup_spans
from repro.serve import (
    GraphQueryServer,
    ManualClock,
    ServerConfig,
    replay,
    synthetic_workload,
)

from conftest import baseline_record, report

N_REQUESTS = 20_000
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

# Local acceptance bar: sampled tracing costs <= 10% throughput.  CI
# runners are noisy enough to flake a 0.9x floor on a ~1s measurement,
# so CI asserts 0.75x — a real regression (tracing every span on the
# hot path unsampled) shows up far below that.
OVERHEAD_FLOOR = 0.75 if os.environ.get("CI") else 0.9
SAMPLE_EVERY = 16
REPEATS = 6


@pytest.fixture(scope="module")
def packed(medium_standin):
    ds = medium_standin
    return open_store("packed", ds.sources, ds.destinations, ds.num_nodes)


@pytest.fixture(scope="module")
def zipf_schedule(medium_standin):
    ds = medium_standin

    def make(seed=17):
        return synthetic_workload(
            N_REQUESTS,
            ds.num_nodes,
            kind="zipf",
            skew=1.2,
            edge_fraction=0.25,
            mean_interarrival_ns=1_000.0,
            edges=(ds.sources, ds.destinations),
            seed=seed,
        )

    return make


def _serve(store, workload, obs):
    """Virtual-time replay, wall-clock timed: arrivals advance a
    ManualClock so every mode sees identical batch boundaries, and the
    measured seconds are serving compute (plus tracer) alone."""
    server = GraphQueryServer(
        store,
        config=ServerConfig(
            max_batch_size=256,
            max_wait_ns=500e3,
            queue_capacity=1 << 16,
            policy="block",
            obs=obs,
        ),
        clock=ManualClock(),
    )
    t0 = time.perf_counter()
    replay(server, workload)
    return server, time.perf_counter() - t0


def test_tracer_overhead_gate(packed, zipf_schedule):
    """The ISSUE gate: tracer-on serving >= 0.9x tracer-off throughput."""
    modes = {
        "off": None,
        "sampled": ObsConfig(sample_every=SAMPLE_EVERY),
        "full": ObsConfig(),
    }
    best = {k: (float("inf"), None) for k in modes}
    for label, obs in modes.items():  # warmup pass, untimed
        _serve(packed, zipf_schedule(seed=11), obs)
    for i in range(REPEATS):
        for label, obs in modes.items():
            srv, t = _serve(packed, zipf_schedule(seed=17 + i), obs)
            if t < best[label][0]:
                best[label] = (t, srv)
    off_s = best["off"][0]
    sampled_s, sampled_srv = best["sampled"]
    full_s, full_srv = best["full"]

    ratio_sampled = off_s / sampled_s
    ratio_full = off_s / full_s

    # the traced runs must have actually traced: sampled roots with
    # kernel cost attached, not a no-op tracer winning by forfeit
    spans = sampled_srv.tracer.spans()
    assert any(s.name == "request" for s in spans)
    kernel_rows = [r for r in rollup_spans(spans)
                   if r.layer == "query" and r.cost_ns > 0]
    assert kernel_rows, "sampled run attributed no kernel cost"
    assert len(full_srv.tracer.spans()) > len(spans)

    baseline = {
        "workload": f"zipf(1.2), {N_REQUESTS} requests, 25% edge queries",
        "store": repr(packed),
        "tracer_off_s": off_s,
        "sampled": {
            "sample_every": SAMPLE_EVERY,
            "seconds": sampled_s,
            "throughput_ratio": ratio_sampled,
            "spans": len(spans),
        },
        "full_sampling": {
            "seconds": full_s,
            "throughput_ratio": ratio_full,
            "spans": len(full_srv.tracer.spans()),
            "dropped": full_srv.tracer.dropped,
        },
    }
    if os.environ.get("BENCH_WRITE_BASELINE") or not BASELINE_PATH.exists():
        baseline_record(
            BASELINE_PATH, baseline, name="obs",
            gate=(f"tracer on (sample_every={SAMPLE_EVERY}) >= "
                  f"{OVERHEAD_FLOOR}x tracer-off throughput"),
            measured=ratio_sampled,
        )

    report(
        f"Tracer overhead ({N_REQUESTS} Zipf requests, "
        f"interleaved best of {REPEATS})",
        render_table(
            ["mode", "seconds", "throughput vs off"],
            [
                ["tracer off", f"{off_s:.3f}", "1.00x"],
                [f"sampled (every {SAMPLE_EVERY})", f"{sampled_s:.3f}",
                 f"{ratio_sampled:.2f}x"],
                ["full sampling", f"{full_s:.3f}", f"{ratio_full:.2f}x"],
            ],
            title=f"sampled tracing floor {OVERHEAD_FLOOR}x",
        ),
    )
    assert ratio_sampled >= OVERHEAD_FLOOR, (
        f"sampled tracing cut throughput to {ratio_sampled:.2f}x "
        f"(floor {OVERHEAD_FLOOR}x)"
    )
