"""Input-contract ablation — what if the edge list is NOT pre-sorted?

Table II assumes the paper's standing input contract ("we assume that
the datasets are sorted").  This bench re-runs the pipeline on shuffled
input with the chunked sample sort bolted on (``sort=True``) and
checks that (a) the full pipeline still scales and (b) the sort's
share of the total is visible and bounded — i.e. the contract is a
constant-factor convenience, not a hidden cliff.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_series
from repro import open_store
from repro.parallel import SerialExecutor, SimulatedMachine
from repro.parallel.sort import parallel_sort

from conftest import report


@pytest.fixture(scope="module")
def shuffled(medium_standin):
    rng = np.random.default_rng(61)
    order = rng.permutation(medium_standin.num_edges)
    return (
        medium_standin.sources[order],
        medium_standin.destinations[order],
        medium_standin.num_nodes,
    )


def test_parallel_sort_wallclock(benchmark, shuffled):
    src, dst, n = shuffled
    keys = (src.astype(np.uint64) << np.uint64(32)) | dst.astype(np.uint64)
    out = benchmark(parallel_sort, keys, SerialExecutor())
    assert out.shape == keys.shape


def test_build_with_sort_wallclock(benchmark, shuffled):
    src, dst, n = shuffled
    packed = benchmark.pedantic(
        open_store,
        args=("packed", src, dst, n),
        kwargs={"sort": True},
        rounds=3,
        iterations=1,
    )
    assert packed.num_edges == len(src)


def test_sorted_vs_unsorted_scaling_report(benchmark, medium_standin, shuffled):
    ds = medium_standin
    ssrc, sdst, n = shuffled

    def sweep():
        series = {"pre-sorted (paper contract)": {}, "raw + parallel sort": {}}
        for p in (1, 4, 16, 64):
            m = SimulatedMachine(p)
            open_store("packed", ds.sources, ds.destinations, ds.num_nodes, executor=m)
            series["pre-sorted (paper contract)"][p] = m.elapsed_ms()
            m = SimulatedMachine(p)
            open_store("packed", ssrc, sdst, n, executor=m, sort=True)
            series["raw + parallel sort"][p] = m.elapsed_ms()
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    pre = series["pre-sorted (paper contract)"]
    raw = series["raw + parallel sort"]
    for p in (1, 4, 16, 64):
        assert raw[p] > pre[p]  # sorting is never free
        assert raw[p] < 6 * pre[p]  # ...but stays a constant factor
    # the combined pipeline must still scale
    assert raw[64] < raw[1] / 5
    report(
        "Input-contract ablation: pipeline time (simulated ms) with and "
        "without the pre-sorted assumption",
        render_series("packed-CSR build on pokec stand-in", series),
    )
