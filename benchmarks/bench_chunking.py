"""Design-choice ablation — overlap-merge vs aligned chunking.

The paper splits the edge array evenly and repairs boundary overlaps
(the temp-degree merge).  The alternative — aligning chunk boundaries
to node runs — needs no merge but loses load balance on power-law
degree distributions.  This bench quantifies that trade-off, which is
why DESIGN.md calls the paper's choice out as load-bearing.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.parallel.chunking import aligned_chunks, balance_ratio, even_chunks

from conftest import report


@pytest.mark.parametrize("p", [8, 64])
def test_aligned_chunking_wallclock(benchmark, medium_standin, p):
    src = medium_standin.sources
    chunks = benchmark(aligned_chunks, src, p)
    assert sum(len(c) for c in chunks) == len(src)


def test_chunking_balance_report(benchmark, standins):
    def measure():
        rows = []
        for name, ds in standins.items():
            for p in (8, 64):
                even = balance_ratio(even_chunks(len(ds.sources), p))
                aligned = balance_ratio(aligned_chunks(ds.sources, p))
                rows.append([name, p, even, aligned])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    # even chunking is perfectly balanced; aligned must be worse
    # somewhere on these power-law graphs
    assert all(row[2] == pytest.approx(1.0, abs=0.01) for row in rows)
    assert any(row[3] > row[2] for row in rows)
    report(
        "Chunking ablation: load-balance ratio (max/mean chunk, 1.0 = even)",
        render_table(["graph", "p", "even+merge (paper)", "run-aligned"], rows),
    )
