"""Section VI claim — "the edge list consumes more time in querying
compared to CSR".

Query latency and memory across every store on one stand-in graph; the
unsorted edge list's linear scans are the paper's slow case.
"""

import time

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro import open_store
from repro.utils import human_bytes

from conftest import report

N_QUERIES = 500


@pytest.fixture(scope="module")
def small_graph():
    from repro.datasets import standin

    ds = standin("webnotredame", scale=1 / 10, seed=31)
    return ds


@pytest.fixture(scope="module")
def all_stores(small_graph):
    ds = small_graph
    args = (ds.sources, ds.destinations, ds.num_nodes)
    return {
        "csr": open_store("csr-serial", *args),
        "bitpacked-csr": open_store("packed", *args),
        "k2tree": open_store("k2tree", *args),
        "edgelist-sorted": open_store("edgelist", *args),
        "edgelist-raw": open_store("edgelist-unsorted", *args),
        "adjlist": open_store("adjlist", *args),
    }


@pytest.fixture(scope="module")
def queries(small_graph):
    rng = np.random.default_rng(37)
    n = small_graph.num_nodes
    qs = [
        (int(rng.integers(0, n)), int(rng.integers(0, n))) for _ in range(N_QUERIES)
    ]
    # plant real edges in half the batch so the hit column is non-trivial
    picks = rng.integers(0, small_graph.num_edges, N_QUERIES // 2)
    for slot, i in enumerate(picks.tolist()):
        qs[slot] = (int(small_graph.sources[i]), int(small_graph.destinations[i]))
    return qs


@pytest.mark.parametrize(
    "store_name",
    ["csr", "bitpacked-csr", "k2tree", "edgelist-sorted", "edgelist-raw", "adjlist"],
)
def test_has_edge_wallclock(benchmark, all_stores, queries, store_name):
    store = all_stores[store_name]

    def run():
        return sum(store.has_edge(u, v) for u, v in queries[:100])

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_store_comparison_report(benchmark, all_stores, queries):
    def measure():
        rows = []
        latency = {}
        for name, store in all_stores.items():
            start = time.perf_counter()
            answers = [store.has_edge(u, v) for u, v in queries]
            per_query_us = (time.perf_counter() - start) / N_QUERIES * 1e6
            latency[name] = per_query_us
            rows.append(
                [name, human_bytes(store.memory_bytes()), per_query_us, sum(answers)]
            )
        return rows, latency

    rows, latency = benchmark.pedantic(measure, rounds=1, iterations=1)
    # every store answered identically (hits column equal)
    hits = {row[3] for row in rows}
    assert len(hits) == 1
    # the paper's claim: raw edge-list scans lose to CSR by a wide margin
    assert latency["edgelist-raw"] > 3 * latency["csr"]
    report(
        "Store comparison: memory and has_edge latency",
        render_table(["store", "bytes", "us/query", "hits"], rows),
    )
