"""LSM serving bench — read throughput under live edge ingest.

ISSUE 7's acceptance gate: an :class:`LsmStore` serving a 10k-request
Zipf workload with 10% write traffic must keep read throughput at
>= 0.5x the immutable packed store serving the read-only stream, and
every compaction along the way must leave the store bit-exact against
a from-scratch rebuild of the same logical edge set.  The baseline is
recorded in ``BENCH_lsm.json`` under ``BENCH_WRITE_BASELINE=1``.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import open_store
from repro.analysis.serving import render_lsm_stats
from repro.analysis.tables import render_table
from repro.lsm import LsmStore
from repro.serve import (
    GraphQueryServer,
    ManualClock,
    ServerConfig,
    WriteRequest,
    replay,
    synthetic_workload,
)

from conftest import baseline_record, report

N_REQUESTS = 10_000
WRITE_FRACTION = 0.1
REPEATS = 3  # best-of, per mode — one-off scheduler stalls don't gate
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_lsm.json"

# Acceptance bar: reads under 10% write traffic keep at least half the
# read-only packed throughput.  Both modes replay on a ManualClock so
# batching is deterministic (windows close on size, not on submit-loop
# stalls) and the ratio measures pure serving compute.  Locally the
# overlay lands around 0.6x; the CI floor absorbs shared-runner noise
# without hiding a collapse to per-row python merging on every request.
READ_QPS_FLOOR = 0.25 if os.environ.get("CI") else 0.5


@pytest.fixture(scope="module")
def graph(medium_standin):
    """The stand-in with duplicate edges folded away: the LSM overlay
    is a *set* of edges (checked writes dedup), so a fair base is the
    deduplicated graph."""
    ds = medium_standin
    keys = np.unique(
        ds.sources.astype(np.int64) * ds.num_nodes + ds.destinations
    )
    return keys // ds.num_nodes, keys % ds.num_nodes, ds.num_nodes


@pytest.fixture(scope="module")
def packed(graph):
    src, dst, n = graph
    return open_store("packed", src, dst, n)


@pytest.fixture(scope="module")
def schedules(graph):
    """Read-only and mixed 10k-request Zipf workload factories."""
    src, dst, n = graph

    def make(write_fraction=0.0, seed=17):
        return synthetic_workload(
            N_REQUESTS,
            n,
            kind="zipf",
            skew=1.2,
            edge_fraction=0.25,
            mean_interarrival_ns=1_000.0,
            edges=(src, dst),
            seed=seed,
            write_fraction=write_fraction,
        )

    return make


def _serve_wallclock(store, workload, *, cache_elements=100_000):
    """Virtual-time replay, wall-clock timed: arrivals advance a
    ManualClock so both modes see identical size-closed batches, and
    the measured seconds are serving compute alone."""
    server = GraphQueryServer(
        store,
        config=ServerConfig(
            cache_elements=cache_elements,
            max_batch_size=256,
            max_wait_ns=500e3,
            queue_capacity=1 << 16,
            policy="block",
        ),
        clock=ManualClock(),
    )
    t0 = time.perf_counter()
    replay(server, workload)
    return server, time.perf_counter() - t0


def test_write_mix_gate(packed, schedules, medium_standin):
    """The acceptance gate: mixed-traffic reads >= 0.5x read-only reads."""
    ds = medium_standin  # only for the baseline's provenance line
    ro_srv, ro_s = min(
        (_serve_wallclock(packed, schedules()) for _ in range(REPEATS)),
        key=lambda pair: pair[1],
    )
    ro = ro_srv.snapshot(elapsed_s=ro_s)

    n_writes = sum(
        isinstance(r, WriteRequest)
        for _, r in schedules(write_fraction=WRITE_FRACTION)
    )
    # fresh overlay and workload per repeat: request slots are
    # single-use, and replaying writes into an already warm memtable
    # would turn them all into cheap no-ops
    runs = []
    for _ in range(REPEATS):
        lsm = LsmStore(packed.num_nodes, [packed], compact_watermark=50_000)
        mixed = schedules(write_fraction=WRITE_FRACTION)
        runs.append((lsm, *_serve_wallclock(lsm, mixed)))
    lsm, mx_srv, mx_s = min(runs, key=lambda triple: triple[2])
    mx = mx_srv.snapshot(elapsed_s=mx_s)

    assert ro.completed == N_REQUESTS
    assert mx.completed == N_REQUESTS - n_writes
    assert mx.writes == n_writes

    # read qps = completed reads per wall-clock second
    ro_qps = ro.completed / ro_s
    mx_qps = mx.completed / mx_s
    ratio = mx_qps / ro_qps

    baseline = {
        "workload": (
            f"zipf(1.2), {N_REQUESTS} requests, 25% edge queries, "
            f"{WRITE_FRACTION:.0%} writes"
        ),
        "graph": (
            f"{ds.name} (deduped): {packed.num_nodes} nodes, "
            f"{packed.num_edges} edges"
        ),
        "read_only": {"seconds": ro_s, "read_qps": ro_qps},
        "mixed": {
            "seconds": mx_s,
            "read_qps": mx_qps,
            "writes": int(mx.writes),
            "write_noops": int(mx.write_noops),
            "write_ns_p50": mx.write_ns_p50,
            "write_ns_p99": mx.write_ns_p99,
            "memtable_edges": int(mx.memtable_edges),
            "compactions": int(mx.compactions),
        },
        "read_qps_ratio": ratio,
    }
    if os.environ.get("BENCH_WRITE_BASELINE") or not BASELINE_PATH.exists():
        baseline_record(
            BASELINE_PATH, baseline, name="lsm",
            gate=f"mixed read qps >= {READ_QPS_FLOOR}x read-only",
            measured=ratio,
        )

    report(
        f"Read throughput under live ingest ({N_REQUESTS} Zipf requests, "
        f"{WRITE_FRACTION:.0%} writes)",
        render_table(
            ["mode", "reads", "writes", "seconds", "read qps"],
            [
                ["packed read-only", ro.completed, 0, f"{ro_s:.3f}",
                 f"{ro_qps:,.0f}"],
                ["lsm mixed", mx.completed, n_writes, f"{mx_s:.3f}",
                 f"{mx_qps:,.0f}"],
            ],
            title=f"mixed/read-only qps ratio {ratio:.2f}x "
                  f"(floor {READ_QPS_FLOOR}x)",
        ) + "\n" + render_lsm_stats(lsm),
    )
    assert ratio >= READ_QPS_FLOOR, (
        f"reads under writes only {ratio:.2f}x of read-only throughput"
    )


def test_compaction_bitexact_under_traffic(packed, schedules):
    """Low watermark forces many compactions mid-stream; afterwards the
    overlay must equal a from-scratch rebuild of its logical edges."""
    lsm = LsmStore(packed.num_nodes, [packed], compact_watermark=500)
    server, _ = _serve_wallclock(lsm, schedules(write_fraction=0.2, seed=29))
    snap = server.snapshot()
    assert snap.compactions >= 1, "watermark never tripped"

    src, dst = lsm._logical_edges()
    rebuilt = open_store("packed", src, dst, lsm.num_nodes)
    assert rebuilt.num_edges == lsm.num_edges
    rng = np.random.default_rng(5)
    for u in rng.integers(0, lsm.num_nodes, 2_000).tolist():
        assert np.array_equal(
            np.asarray(lsm.neighbors(u), np.int64), rebuilt.neighbors(u)
        )
    us = rng.integers(0, lsm.num_nodes, 5_000)
    flat, offs = lsm.neighbors_batch(us)
    rflat, roffs = rebuilt.neighbors_batch(us)
    assert np.array_equal(offs, roffs)
    assert np.array_equal(np.asarray(flat, np.int64),
                          np.asarray(rflat, np.int64))
    report(
        "Compaction bit-exactness under 20% write traffic",
        render_lsm_stats(lsm, title="lsm store after serving"),
    )
