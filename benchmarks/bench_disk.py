"""Memory-mapped disk store vs the in-memory packed CSR.

The gate: on a 10k-query Zipf workload the disk store's batched query
path must stay within **2x** of the in-memory packed store (qps ratio
>= 0.5x) — the price of selective row loading, paid once per cold page
and amortised by the OS page cache on the hot hubs.  Shared CI runners
add I/O noise, so CI only asserts a 0.2x floor.

Also measured: cold open (manifest parse, nothing mapped), the
out-of-core builder's traced heap peak on a graph ~20x the chunk size
(the bulk payload lives in memmaps tracemalloc never sees — that is
the point), and a segment-size sweep for EXPERIMENTS.md.  Throughput
baselines land in ``BENCH_disk.json`` under ``BENCH_WRITE_BASELINE=1``
(or when the file is missing).
"""

import os
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro import open_store
from repro.analysis.tables import render_table
from repro.csr.io import read_edge_list_binary, write_edge_list_binary
from repro.disk import DiskStore, build_disk_store, write_disk_store
from repro.query import batch_edge_existence
from repro.serve import zipf_nodes

from conftest import baseline_record, report

N_QUERIES = 10_000
SKEW = 1.2
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_disk.json"

# Local acceptance bar: disk-backed Zipf serving at >= 0.5x the
# in-memory packed qps (measured ~0.7-1.0x once the page cache is warm
# — the decode kernels are identical; only page faults differ).  CI
# runners have noisy shared disks, so CI asserts a 0.2x floor.
PARITY_FLOOR = 0.2 if os.environ.get("CI") else 0.5


@pytest.fixture(scope="module")
def mono(medium_standin):
    ds = medium_standin
    return open_store("packed", ds.sources, ds.destinations, ds.num_nodes)


@pytest.fixture(scope="module")
def disk(mono, tmp_path_factory):
    return write_disk_store(mono, tmp_path_factory.mktemp("bench-disk") / "store")


@pytest.fixture(scope="module")
def workload(medium_standin):
    """10k Zipf node lookups + 10k Zipf-source edge probes, half planted."""
    ds = medium_standin
    n = ds.num_nodes
    rng = np.random.default_rng(17)
    unodes = zipf_nodes(N_QUERIES, n, SKEW, rng=rng)
    qs = np.stack(
        [zipf_nodes(N_QUERIES, n, SKEW, rng=rng), rng.integers(0, n, N_QUERIES)],
        axis=1,
    )
    picks = rng.integers(0, ds.num_edges, N_QUERIES // 2)
    qs[: N_QUERIES // 2, 0] = ds.sources[picks]
    qs[: N_QUERIES // 2, 1] = ds.destinations[picks]
    return unodes, qs


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _serve_workload(store, unodes, qs):
    flat_offs = store.neighbors_batch(unodes)
    hits = batch_edge_existence(store, qs)
    return flat_offs, hits


def test_disk_bitexact_on_workload(mono, disk, workload):
    unodes, qs = workload
    want_fo, want_hits = _serve_workload(mono, unodes, qs)
    got_fo, got_hits = _serve_workload(disk, unodes, qs)
    assert np.array_equal(got_fo[0], want_fo[0])
    assert np.array_equal(got_fo[1], want_fo[1])
    assert np.array_equal(got_hits, want_hits)


def test_cold_open_is_lazy(mono, disk):
    """Opening a store directory parses the manifest and maps nothing;
    resident bytes stay a sliver of the on-disk payload."""
    t_open, cold = _best_of(lambda: DiskStore.open(disk.path, verify=False))
    assert cold.mapped_segments() == 0
    resident_cold = cold.memory_bytes()
    assert resident_cold < disk.disk_bytes() / 10
    t_first, _ = _best_of(lambda: cold.neighbors(0))
    report(
        "Disk store cold open (manifest only, no segment mapped)",
        render_table(
            ["metric", "value"],
            [
                ["open", f"{t_open * 1e6:.0f} us"],
                ["first row", f"{t_first * 1e6:.0f} us"],
                ["on disk", f"{disk.disk_bytes():,} B"],
                ["resident after open", f"{resident_cold:,} B"],
                ["segments", str(len(disk.manifest.offsets) + len(disk.manifest.columns))],
            ],
        ),
    )


def test_zipf_parity_gate(mono, disk, workload):
    """The headline gate: memory-mapped serving within 2x of in-memory
    packed qps on the combined 10k-query Zipf workload."""
    unodes, qs = workload
    total = 2 * N_QUERIES

    _serve_workload(disk, unodes, qs)  # warm the page cache once
    t_mono, _ = _best_of(lambda: _serve_workload(mono, unodes, qs))
    t_disk, _ = _best_of(lambda: _serve_workload(disk, unodes, qs))
    ratio = t_mono / t_disk

    baseline = {
        "store": "DiskStore (memory-mapped segments, pokec stand-in, 1/64 scale)",
        "workload": f"{N_QUERIES} zipf({SKEW}) neighbors + "
                    f"{N_QUERIES} edge probes",
        "graph": {"nodes": int(mono.num_nodes), "edges": int(mono.num_edges)},
        "mono_s": t_mono,
        "disk_s": t_disk,
        "qps_ratio": ratio,
        "disk_qps": total / t_disk,
        "disk_bytes": disk.disk_bytes(),
        "bits_per_edge": disk.bits_per_edge(),
    }
    # refresh the committed baseline only on request — a plain test run
    # must not dirty the working tree with this machine's numbers
    if os.environ.get("BENCH_WRITE_BASELINE") or not BASELINE_PATH.exists():
        baseline_record(
            BASELINE_PATH, baseline, name="disk",
            gate=f"mmap qps >= {PARITY_FLOOR}x in-memory",
            measured=ratio,
        )

    report(
        f"Disk store vs in-memory packed ({N_QUERIES}-query Zipf workload)",
        render_table(
            ["store", "workload ms", "qps ratio", "q/s"],
            [
                ["packed (RAM)", f"{t_mono * 1e3:.1f}", "1.00x",
                 f"{total / t_mono:,.0f}"],
                ["disk (mmap)", f"{t_disk * 1e3:.1f}", f"{ratio:.2f}x",
                 f"{total / t_disk:,.0f}"],
            ],
            title=f"warm page cache (gate: >= {PARITY_FLOOR}x)",
        ),
    )
    assert ratio >= PARITY_FLOOR, (
        f"disk qps fell to {ratio:.2f}x of in-memory (floor {PARITY_FLOOR}x)"
    )


def test_out_of_core_builder_memory(tmp_path_factory):
    """Builder heap peak is bounded by the chunk/segment knobs on a
    graph 100x the chunk size — never by the edge count."""
    out = tmp_path_factory.mktemp("ooc")
    chunk = 4_000
    seg = 1 << 16
    m = 400_000  # 100x the chunk
    n = 5_000
    rng = np.random.default_rng(5)
    edge_path = out / "edges.bin"
    write_edge_list_binary(
        edge_path, rng.integers(0, n, m), rng.integers(0, n, m)
    )

    tracemalloc.start()
    try:
        disk = build_disk_store(
            edge_path, out / "store", num_nodes=n, chunk_edges=chunk,
            segment_bytes=seg,
        )
        _, peak_ooc = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert disk.num_edges == m

    # the load-everything path for contrast: peak scales with m
    src, dst, _ = read_edge_list_binary(edge_path)
    tracemalloc.start()
    try:
        open_store("packed", src, dst, n, sort=True)
        _, peak_mem = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    budget = 64 * chunk + 64 * n + 40 * seg + (2 << 20)
    report(
        "Out-of-core builder peak heap (tracemalloc; memmaps not counted)",
        render_table(
            ["metric", "value"],
            [
                ["edges", f"{m:,} ({m // chunk}x the chunk)"],
                ["chunk_edges / segment_bytes", f"{chunk:,} / {seg:,}"],
                ["out-of-core traced peak", f"{peak_ooc:,} B"],
                ["bound (chunk+segment+O(n))", f"{budget:,} B"],
                ["in-memory build traced peak", f"{peak_mem:,} B"],
            ],
        ),
    )
    assert peak_ooc < budget, f"builder peak {peak_ooc} exceeds bound {budget}"
    assert peak_ooc < peak_mem / 3, (
        f"out-of-core peak {peak_ooc} not clearly below in-memory {peak_mem}"
    )


def test_segment_size_sweep(mono, workload, tmp_path_factory):
    """Segment-size sweep for EXPERIMENTS.md: file count vs workload
    wall-clock; decode cost is identical, only mapping granularity moves."""
    unodes, qs = workload
    t_mono, _ = _best_of(lambda: _serve_workload(mono, unodes, qs))
    rows = [["packed (RAM)", "-", f"{t_mono * 1e3:.1f}", "1.00x"]]
    root = tmp_path_factory.mktemp("sweep")
    for kib in (64, 256, 1024, 4096):
        store = write_disk_store(mono, root / f"s{kib}", segment_bytes=kib << 10)
        _serve_workload(store, unodes, qs)  # warm
        t, _ = _best_of(lambda: _serve_workload(store, unodes, qs))
        nseg = len(store.manifest.offsets) + len(store.manifest.columns)
        rows.append(
            [f"disk {kib} KiB", str(nseg), f"{t * 1e3:.1f}",
             f"{t_mono / t:.2f}x"]
        )
        store.close()
    report(
        "Disk store segment-size sweep (Zipf workload, warm cache)",
        render_table(["store", "segments", "workload ms", "qps ratio"], rows),
    )
