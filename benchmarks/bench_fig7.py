"""Figure 7 — speed-up (%) gained using multiple processors.

Derived from the Figure 6 sweep exactly as the paper derives its final
Table II column.  The shape target: speed-up grows monotonically with
p and lands in the paper's 58-97% band over p in {4..64}; the rendered
series overlays the paper's own points for eyeball comparison.
"""

import pytest

from repro.analysis.compare import check_fig7, render_checks
from repro.analysis.experiments import fig7_from_fig6, render_fig7, run_fig6
from repro.analysis.speedup import amdahl_fit
from repro.datasets import PAPER_GRAPHS

from conftest import report


def test_fig7_speedup_percent(benchmark, bench_scale):
    def run():
        return run_fig6(scale=bench_scale)

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    percents = fig7_from_fig6(curves)
    for name, series in percents.items():
        values = [series[p] for p in sorted(series)]
        assert values == sorted(values), name  # monotone in p
        for p in (4, 8, 16, 64):
            assert 40.0 < series[p] < 99.0, (name, p, series[p])
        # same saturating family as the paper: a nonzero Amdahl serial
        # fraction must explain the curve
        ps = sorted(curves[name].times_ms)
        s = amdahl_fit(ps, [curves[name].times_ms[p] for p in ps])
        assert 0.0 < s < 0.3, (name, s)
    # paper's own band at p=64 is 83.8-96.2%; ours must overlap it
    at64 = [series[64] for series in percents.values()]
    paper64 = [spec.speedup_pct[64] for spec in PAPER_GRAPHS.values()]
    assert max(at64) > min(paper64)
    checks = check_fig7(curves)
    assert all(c.passed for c in checks), [c.claim for c in checks if not c.passed]
    report("Figure 7 (reproduced, with paper overlay)", render_fig7(curves))
    report("Figure 7 shape verdicts", render_checks("claims vs measured", checks))
