"""Cost-model sensitivity — does the reproduction depend on calibration?

DESIGN.md §4 claims the speed-up *shape* comes from the algorithms'
structure, not from the cost-model constants.  This bench tests that:
every constant is swept x0.5 and x2 around its default, and the Table
II shape checks must hold under all of them.  If the reproduction only
worked for one magic calibration, this is where it would fail.
"""

from dataclasses import replace

import pytest

from repro.analysis.compare import check_fig6, check_fig7
from repro.analysis.experiments import run_fig6
from repro.analysis.tables import render_table
from repro.parallel.cost import DEFAULT_COST_MODEL

from conftest import report

SWEEPS = [
    ("default", {}),
    ("reads x2", {"read_ns": DEFAULT_COST_MODEL.read_ns * 2}),
    ("bit ops x2", {"bit_op_ns": DEFAULT_COST_MODEL.bit_op_ns * 2}),
    ("copy x2", {"copy_byte_ns": DEFAULT_COST_MODEL.copy_byte_ns * 2}),
    ("copy x0.5", {"copy_byte_ns": DEFAULT_COST_MODEL.copy_byte_ns * 0.5}),
    ("sync x2", {"sync_ns": DEFAULT_COST_MODEL.sync_ns * 2}),
    ("sync x0.5", {"sync_ns": DEFAULT_COST_MODEL.sync_ns * 0.5}),
    ("dispatch x2", {"dispatch_ns": DEFAULT_COST_MODEL.dispatch_ns * 2}),
]


def test_shape_robust_to_calibration(benchmark, bench_scale):
    def sweep():
        rows = []
        for name, overrides in SWEEPS:
            model = replace(DEFAULT_COST_MODEL, **overrides)
            curves = run_fig6(
                scale=bench_scale, cost_model=model, graphs=("pokec",)
            )
            ok6 = all(c.passed for c in check_fig6(curves))
            ok7 = all(c.passed for c in check_fig7(curves))
            pct64 = curves["pokec"].percent()[64]
            rows.append([name, "PASS" if ok6 else "FAIL",
                         "PASS" if ok7 else "FAIL", pct64])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    failures = [r[0] for r in rows if "FAIL" in (r[1], r[2])]
    assert not failures, failures
    # speed-up at 64 stays in a sane band across all calibrations
    pcts = [r[3] for r in rows]
    assert min(pcts) > 80 and max(pcts) < 99
    report(
        "Cost-model sensitivity: Fig 6/7 shape checks under x0.5-x2 sweeps (pokec)",
        render_table(["model", "fig6 shape", "fig7 shape", "speed-up@64 (%)"], rows),
    )
